// Paged on-disk TLR format ("TLRP"): the out-of-core counterpart of the
// monolithic "TLRK" stream. The survey-scale operator of the paper is
// 110 GB compressed — nothing forces it through one sequential read. The
// paged layout gives every tile its own page-aligned region so a tiered
// operator store (internal/opstore) can fault single tiles in and out
// under a byte budget:
//
//	page 0:   magic "TLRP" | version u32 | pageSize u32 | matCount u32 |
//	          indexOff u64 | indexLen u64 | indexCRC u32 | headerCRC u32
//	          (zero-padded to pageSize)
//	per tile: one page-aligned region, payloadLen u32 | payloadCRC u32 |
//	          payload (U panel, then V panel), zero-padded to the next
//	          page boundary
//	index:    at indexOff — per matrix: freq f64, M/N/NB i32, then per
//	          tile rank i32, format u8, pad[3], pageOff u64, payloadLen
//	          u32
//
// All CRCs are CRC-32C (Castagnoli) so a flipped byte in any page or in
// the index surfaces as ErrChecksum at load time, tile-granular.
//
// Panels are stored in the tile's storage tier chosen at build time by a
// precision.Policy: FP32 panels carry raw interleaved float32 pairs;
// FP16/BF16 panels carry one per-panel power-of-two scale exponent
// (int16) followed by uint16 re/im mantissa pairs. The encode/decode
// pair replicates precision.Quantize's per-panel scaling bit for bit, so
// a tile loaded from an FP16 page equals the in-memory quantized tile
// exactly — the differential tests in internal/testkit assert 0 ULPs.
package tlrio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/dense"
	"repro/internal/precision"
	"repro/internal/tlr"
)

var pagedMagic = [4]byte{'T', 'L', 'R', 'P'}

// PagedVersion is the current paged-format version.
const PagedVersion uint32 = 1

// DefaultPageSize is the page granularity used when PagedOptions leaves
// PageSize zero — the common 4 KiB filesystem block.
const DefaultPageSize = 4096

// pagedHeaderLen is the byte length of the fixed header (before its
// zero padding out to one page).
const pagedHeaderLen = 4 + 4 + 4 + 4 + 8 + 8 + 4 + 4

// castagnoli is the CRC-32C table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// PagedOptions configures WritePaged.
type PagedOptions struct {
	// PageSize is the alignment granularity (default DefaultPageSize,
	// minimum 64, must be a multiple of 8).
	PageSize int
	// Policy chooses each tile's storage tier at build time (default
	// uniform FP32).
	Policy precision.Policy
}

func (o PagedOptions) withDefaults() (PagedOptions, error) {
	if o.PageSize == 0 {
		o.PageSize = DefaultPageSize
	}
	if o.PageSize < 64 || o.PageSize%8 != 0 {
		return o, fmt.Errorf("tlrio: page size %d (want a multiple of 8, at least 64)", o.PageSize)
	}
	if o.Policy == nil {
		o.Policy = precision.Uniform{F: precision.FP32}
	}
	return o, nil
}

// PagedTile is one tile's index entry.
type PagedTile struct {
	Rank   int
	Format precision.Format
	// PageOff is the absolute file offset of the tile's page-aligned
	// region; PayloadLen the encoded panel bytes inside it.
	PageOff    int64
	PayloadLen int
}

// PagedMatrix is one frequency matrix's index entry: the grid geometry
// plus one PagedTile per tile (row-major, like tlr.Matrix.Tiles).
type PagedMatrix struct {
	Freq             float64
	M, N, NB, MT, NT int
	Tiles            []PagedTile
}

// TileRows and TileCols return the row/column extent of tile (i,j).
func (pm *PagedMatrix) TileRows(i int) int { return min((i+1)*pm.NB, pm.M) - i*pm.NB }
func (pm *PagedMatrix) TileCols(j int) int { return min((j+1)*pm.NB, pm.N) - j*pm.NB }

// TileBytes returns the decoded in-memory footprint of tile idx: U plus
// V at 8 bytes per complex64 element — what a cache holding the decoded
// tile pays, regardless of the on-disk tier.
func (pm *PagedMatrix) TileBytes(idx int) int64 {
	i, j := idx/pm.NT, idx%pm.NT
	return int64(pm.TileRows(i)+pm.TileCols(j)) * int64(pm.Tiles[idx].Rank) * 8
}

// payloadLen returns the encoded byte length of tile idx under its
// recorded format.
func (pm *PagedMatrix) payloadLen(idx int) int {
	i, j := idx/pm.NT, idx%pm.NT
	k := pm.Tiles[idx].Rank
	if pm.Tiles[idx].Format == precision.FP32 {
		return (pm.TileRows(i) + pm.TileCols(j)) * k * 8
	}
	return 2*2 + (pm.TileRows(i)+pm.TileCols(j))*k*4
}

// WritePaged streams the kernel into the paged format. The index is
// assembled up front from the tile geometry (page offsets are a pure
// function of ranks, formats, and the page size), so the file is written
// strictly sequentially: header page, tile pages, index trailer.
func WritePaged(w io.Writer, k *Kernel, opts PagedOptions) error {
	opts, err := opts.withDefaults()
	if err != nil {
		return err
	}
	if len(k.Freqs) != len(k.Mats) {
		return fmt.Errorf("tlrio: %d freqs but %d matrices", len(k.Freqs), len(k.Mats))
	}
	ps := opts.PageSize
	// Pass 1: geometry → index. pageOff assignment needs every payload
	// length, which needs every rank and format but no panel data.
	mats := make([]*PagedMatrix, len(k.Mats))
	cur := int64(pagedPages(pagedHeaderLen, ps)) * int64(ps)
	for mi, t := range k.Mats {
		for _, v := range []int{t.M, t.N, t.NB} {
			if v <= 0 || v > maxDim {
				return fmt.Errorf("tlrio: matrix %d dimension %d out of range", mi, v)
			}
		}
		pm := &PagedMatrix{
			Freq: k.Freqs[mi], M: t.M, N: t.N, NB: t.NB, MT: t.MT, NT: t.NT,
			Tiles: make([]PagedTile, t.MT*t.NT),
		}
		for i := 0; i < t.MT; i++ {
			for j := 0; j < t.NT; j++ {
				idx := i*t.NT + j
				tile := t.Tile(i, j)
				if tile == nil {
					return fmt.Errorf("tlrio: matrix %d missing tile (%d,%d)", mi, i, j)
				}
				pm.Tiles[idx] = PagedTile{
					Rank:   tile.Rank(),
					Format: opts.Policy.FormatFor(i, j, t.MT, t.NT),
				}
				pm.Tiles[idx].PageOff = cur
				pl := pm.payloadLen(idx)
				pm.Tiles[idx].PayloadLen = pl
				cur += int64(pagedPages(8+pl, ps)) * int64(ps)
			}
		}
		mats[mi] = pm
	}
	index := encodeIndex(mats)

	// Header page.
	hdr := make([]byte, pagedHeaderLen)
	copy(hdr, pagedMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:], PagedVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(ps))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(mats)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(cur))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(index)))
	binary.LittleEndian.PutUint32(hdr[32:], crc32.Checksum(index, castagnoli))
	binary.LittleEndian.PutUint32(hdr[36:], crc32.Checksum(hdr[:36], castagnoli))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if err := writeZeros(w, pagedPages(pagedHeaderLen, ps)*ps-pagedHeaderLen); err != nil {
		return err
	}

	// Tile pages, one encode buffer reused across tiles.
	var buf []byte
	for mi, t := range k.Mats {
		pm := mats[mi]
		for idx, pt := range pm.Tiles {
			tile := t.Tile(idx/t.NT, idx%t.NT)
			buf = encodeTilePayload(buf[:0], tile, pt.Format)
			if len(buf) != pt.PayloadLen {
				return fmt.Errorf("tlrio: matrix %d tile %d encoded %d bytes, planned %d",
					mi, idx, len(buf), pt.PayloadLen)
			}
			var ph [8]byte
			binary.LittleEndian.PutUint32(ph[0:], uint32(len(buf)))
			binary.LittleEndian.PutUint32(ph[4:], crc32.Checksum(buf, castagnoli))
			if _, err := w.Write(ph[:]); err != nil {
				return err
			}
			if _, err := w.Write(buf); err != nil {
				return err
			}
			if err := writeZeros(w, pagedPages(8+len(buf), ps)*ps-8-len(buf)); err != nil {
				return err
			}
		}
	}
	_, err = w.Write(index)
	return err
}

// pagedPages returns how many whole pages n bytes occupy.
func pagedPages(n, pageSize int) int { return (n + pageSize - 1) / pageSize }

// writeZeros pads n zero bytes.
func writeZeros(w io.Writer, n int) error {
	var zeros [512]byte
	for n > 0 {
		c := min(n, len(zeros))
		if _, err := w.Write(zeros[:c]); err != nil {
			return err
		}
		n -= c
	}
	return nil
}

// encodeIndex serializes the per-matrix tile directory.
func encodeIndex(mats []*PagedMatrix) []byte {
	var out []byte
	for _, pm := range mats {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(pm.Freq))
		for _, v := range []int{pm.M, pm.N, pm.NB} {
			out = binary.LittleEndian.AppendUint32(out, uint32(int32(v)))
		}
		for _, pt := range pm.Tiles {
			out = binary.LittleEndian.AppendUint32(out, uint32(int32(pt.Rank)))
			out = append(out, byte(pt.Format), 0, 0, 0)
			out = binary.LittleEndian.AppendUint64(out, uint64(pt.PageOff))
			out = binary.LittleEndian.AppendUint32(out, uint32(pt.PayloadLen))
		}
	}
	return out
}

// encodeTilePayload appends the tile's U then V panel under the format.
func encodeTilePayload(buf []byte, tile *tlr.Tile, f precision.Format) []byte {
	buf = appendPanel(buf, tile.U, f)
	return appendPanel(buf, tile.V, f)
}

// appendPanel encodes one dense panel. FP32 stores raw interleaved
// float32 pairs; the 16-bit tiers store a per-panel power-of-two scale
// exponent and the rounded mantissas, replicating the exact arithmetic
// of precision.Quantize (scale into [1,2) with an exact power of two,
// round through the format, scale back on decode).
func appendPanel(buf []byte, a *dense.Matrix, f precision.Format) []byte {
	if f == precision.FP32 {
		for j := 0; j < a.Cols; j++ {
			for _, v := range a.Col(j) {
				buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(real(v)))
				buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(imag(v)))
			}
		}
		return buf
	}
	maxAbs := a.MaxAbs()
	e := 0
	scale := 1.0
	if maxAbs > 0 {
		e = math.Ilogb(maxAbs)
		scale = math.Ldexp(1, -e)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(int16(e)))
	for j := 0; j < a.Cols; j++ {
		for _, v := range a.Col(j) {
			buf = binary.LittleEndian.AppendUint16(buf, encodeReal(f, float32(float64(real(v))*scale)))
			buf = binary.LittleEndian.AppendUint16(buf, encodeReal(f, float32(float64(imag(v))*scale)))
		}
	}
	return buf
}

func encodeReal(f precision.Format, x float32) uint16 {
	if f == precision.BF16 {
		return precision.F32ToBF16(x)
	}
	return precision.F32ToF16(x)
}

func decodeReal(f precision.Format, h uint16) float32 {
	if f == precision.BF16 {
		return precision.BF16ToF32(h)
	}
	return precision.F16ToF32(h)
}

// PagedFile is an open paged kernel: the verified index plus the backing
// reader. Tile loads are independent positioned reads, safe for
// concurrent use when the underlying ReaderAt is (os.File and
// bytes.Reader both are).
type PagedFile struct {
	r        io.ReaderAt
	size     int64
	PageSize int
	Mats     []*PagedMatrix
}

// OpenPaged validates the header and index of a paged kernel of the
// given total size and returns a handle for tile loads. No tile data is
// read or verified here — page CRCs are checked lazily by LoadTile.
func OpenPaged(r io.ReaderAt, size int64) (*PagedFile, error) {
	hdr := make([]byte, pagedHeaderLen)
	if size < int64(pagedHeaderLen) {
		return nil, fmt.Errorf("tlrio: paged file truncated (%d bytes)", size)
	}
	if _, err := r.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("tlrio: reading paged header: %w", err)
	}
	if [4]byte(hdr[:4]) != pagedMagic {
		return nil, fmt.Errorf("tlrio: bad paged magic %q", hdr[:4])
	}
	if got, want := crc32.Checksum(hdr[:36], castagnoli), binary.LittleEndian.Uint32(hdr[36:]); got != want {
		return nil, fmt.Errorf("%w in paged header (file %08x, computed %08x)", ErrChecksum, want, got)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != PagedVersion {
		return nil, fmt.Errorf("tlrio: unsupported paged version %d (have %d)", v, PagedVersion)
	}
	ps := int(binary.LittleEndian.Uint32(hdr[8:]))
	if ps < 64 || ps%8 != 0 {
		return nil, fmt.Errorf("tlrio: implausible page size %d", ps)
	}
	count := binary.LittleEndian.Uint32(hdr[12:])
	if count > maxDim {
		return nil, fmt.Errorf("tlrio: implausible matrix count %d", count)
	}
	indexOff := int64(binary.LittleEndian.Uint64(hdr[16:]))
	indexLen := int64(binary.LittleEndian.Uint64(hdr[24:]))
	if indexOff < 0 || indexLen < 0 || indexLen > size || indexOff > size-indexLen {
		return nil, fmt.Errorf("tlrio: index [%d,%d) outside file of %d bytes", indexOff, indexOff+indexLen, size)
	}
	index := make([]byte, indexLen)
	if _, err := r.ReadAt(index, indexOff); err != nil {
		return nil, fmt.Errorf("tlrio: reading index: %w", err)
	}
	if got, want := crc32.Checksum(index, castagnoli), binary.LittleEndian.Uint32(hdr[32:]); got != want {
		return nil, fmt.Errorf("%w in paged index (file %08x, computed %08x)", ErrChecksum, want, got)
	}
	pf := &PagedFile{r: r, size: size, PageSize: ps}
	for mi := uint32(0); mi < count; mi++ {
		pm, rest, err := decodeIndexMatrix(index, size)
		if err != nil {
			return nil, fmt.Errorf("tlrio: index matrix %d: %w", mi, err)
		}
		index = rest
		pf.Mats = append(pf.Mats, pm)
	}
	if len(index) != 0 {
		return nil, fmt.Errorf("tlrio: %d trailing index bytes", len(index))
	}
	return pf, nil
}

// decodeIndexMatrix consumes one matrix entry from the index bytes.
func decodeIndexMatrix(b []byte, size int64) (*PagedMatrix, []byte, error) {
	if len(b) < 8+3*4 {
		return nil, nil, fmt.Errorf("truncated geometry")
	}
	pm := &PagedMatrix{Freq: math.Float64frombits(binary.LittleEndian.Uint64(b))}
	pm.M = int(int32(binary.LittleEndian.Uint32(b[8:])))
	pm.N = int(int32(binary.LittleEndian.Uint32(b[12:])))
	pm.NB = int(int32(binary.LittleEndian.Uint32(b[16:])))
	b = b[20:]
	for _, v := range []int{pm.M, pm.N, pm.NB} {
		if v <= 0 || v > maxDim {
			return nil, nil, fmt.Errorf("dimension %d out of range", v)
		}
	}
	pm.MT = (pm.M + pm.NB - 1) / pm.NB
	pm.NT = (pm.N + pm.NB - 1) / pm.NB
	pm.Tiles = make([]PagedTile, pm.MT*pm.NT)
	for idx := range pm.Tiles {
		if len(b) < 4+4+8+4 {
			return nil, nil, fmt.Errorf("truncated tile entry %d", idx)
		}
		pt := PagedTile{
			Rank:       int(int32(binary.LittleEndian.Uint32(b))),
			Format:     precision.Format(b[4]),
			PageOff:    int64(binary.LittleEndian.Uint64(b[8:])),
			PayloadLen: int(binary.LittleEndian.Uint32(b[16:])),
		}
		b = b[20:]
		if pt.Rank < 0 || pt.Rank > pm.NB {
			return nil, nil, fmt.Errorf("tile %d rank %d out of [0,%d]", idx, pt.Rank, pm.NB)
		}
		switch pt.Format {
		case precision.FP32, precision.FP16, precision.BF16:
		default:
			return nil, nil, fmt.Errorf("tile %d unknown format %d", idx, pt.Format)
		}
		if pt.PageOff < 0 || int64(pt.PayloadLen) < 0 ||
			pt.PageOff > size || int64(pt.PayloadLen)+8 > size-pt.PageOff {
			return nil, nil, fmt.Errorf("tile %d region [%d,%d) outside file", idx, pt.PageOff, pt.PageOff+int64(pt.PayloadLen)+8)
		}
		pm.Tiles[idx] = pt
		if want := pm.payloadLen(idx); pt.PayloadLen != want {
			return nil, nil, fmt.Errorf("tile %d payload %d bytes, geometry implies %d", idx, pt.PayloadLen, want)
		}
	}
	return pm, b, nil
}

// LoadTile reads, CRC-verifies, and decodes one tile. The returned tile
// holds FP32 compute values: reduced-tier pages are dequantized through
// the per-panel scale exactly as precision.Quantize would produce them.
func (pf *PagedFile) LoadTile(mat, idx int) (*tlr.Tile, error) {
	if mat < 0 || mat >= len(pf.Mats) {
		return nil, fmt.Errorf("tlrio: matrix %d out of range", mat)
	}
	pm := pf.Mats[mat]
	if idx < 0 || idx >= len(pm.Tiles) {
		return nil, fmt.Errorf("tlrio: tile %d out of range", idx)
	}
	pt := pm.Tiles[idx]
	buf := make([]byte, 8+pt.PayloadLen)
	if _, err := pf.r.ReadAt(buf, pt.PageOff); err != nil {
		return nil, fmt.Errorf("tlrio: reading tile %d page: %w", idx, err)
	}
	if got := int(binary.LittleEndian.Uint32(buf)); got != pt.PayloadLen {
		return nil, fmt.Errorf("tlrio: tile %d page header says %d payload bytes, index says %d", idx, got, pt.PayloadLen)
	}
	payload := buf[8:]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(buf[4:]); got != want {
		return nil, fmt.Errorf("%w in tile %d page (file %08x, computed %08x)", ErrChecksum, idx, want, got)
	}
	i, j := idx/pm.NT, idx%pm.NT
	u, payload := decodePanel(payload, pm.TileRows(i), pt.Rank, pt.Format)
	v, _ := decodePanel(payload, pm.TileCols(j), pt.Rank, pt.Format)
	return &tlr.Tile{U: u, V: v}, nil
}

// decodePanel consumes one rows×k panel from the payload.
func decodePanel(b []byte, rows, k int, f precision.Format) (*dense.Matrix, []byte) {
	a := dense.New(rows, k)
	if f == precision.FP32 {
		for j := 0; j < k; j++ {
			col := a.Col(j)
			for i := range col {
				re := math.Float32frombits(binary.LittleEndian.Uint32(b))
				im := math.Float32frombits(binary.LittleEndian.Uint32(b[4:]))
				col[i] = complex(re, im)
				b = b[8:]
			}
		}
		return a, b
	}
	e := int(int16(binary.LittleEndian.Uint16(b)))
	b = b[2:]
	inv := math.Ldexp(1, e)
	for j := 0; j < k; j++ {
		col := a.Col(j)
		for i := range col {
			re := decodeReal(f, binary.LittleEndian.Uint16(b))
			im := decodeReal(f, binary.LittleEndian.Uint16(b[2:]))
			col[i] = complex(float32(float64(re)*inv), float32(float64(im)*inv))
			b = b[4:]
		}
	}
	return a, b
}
