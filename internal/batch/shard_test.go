package batch

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

func noSleep(time.Duration) {}

func makeTasks(n, width int) []ShardTask {
	tasks := make([]ShardTask, n)
	for i := range tasks {
		tasks[i] = ShardTask{
			ID: i,
			X:  make([]complex64, width),
			Y:  make([]complex64, width),
		}
	}
	return tasks
}

// fill marks a task's output so tests can assert every task executed.
func fill(task ShardTask) {
	for i := range task.Y {
		task.Y[i] = complex(float32(task.ID+1), 0)
	}
}

func checkAllDone(t *testing.T, tasks []ShardTask) {
	t.Helper()
	for _, task := range tasks {
		for i, v := range task.Y {
			if v != complex(float32(task.ID+1), 0) {
				t.Fatalf("task %d output %d = %v, not fully written", task.ID, i, v)
			}
		}
	}
}

func TestShardRunnerHappyPath(t *testing.T) {
	r, err := NewShardRunner(ShardOptions{Shards: 4, Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	tasks := makeTasks(10, 3)
	if err := r.Run(tasks, func(shard int, task ShardTask) error {
		fill(task)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	checkAllDone(t, tasks)
	if r.Alive() != 4 {
		t.Errorf("alive = %d, want 4", r.Alive())
	}
}

func TestShardRunnerValidation(t *testing.T) {
	if _, err := NewShardRunner(ShardOptions{Shards: 0}); err == nil {
		t.Error("zero shards should error")
	}
	r, _ := NewShardRunner(ShardOptions{Shards: 2, Sleep: noSleep})
	if r.Shards() != 2 {
		t.Errorf("Shards() = %d", r.Shards())
	}
}

func TestShardRunnerTransientRetry(t *testing.T) {
	r, err := NewShardRunner(ShardOptions{Shards: 2, Sleep: noSleep, DeathAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	var failed atomic.Bool
	tasks := makeTasks(6, 2)
	if err := r.Run(tasks, func(shard int, task ShardTask) error {
		if task.ID == 2 && !failed.Swap(true) {
			return errors.New("transient")
		}
		fill(task)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	checkAllDone(t, tasks)
	if r.Alive() != 2 {
		t.Errorf("transient failure killed a shard: alive = %d", r.Alive())
	}
}

func TestShardRunnerDeathAndFailover(t *testing.T) {
	r, err := NewShardRunner(ShardOptions{Shards: 3, Sleep: noSleep, DeathAfter: 2, MaxAttempts: 6})
	if err != nil {
		t.Fatal(err)
	}
	tasks := makeTasks(9, 2)
	if err := r.Run(tasks, func(shard int, task ShardTask) error {
		if shard == 1 {
			return fmt.Errorf("shard %d is broken", shard)
		}
		fill(task)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	checkAllDone(t, tasks)
	if !r.Dead(1) {
		t.Error("persistently failing shard 1 should be dead")
	}
	if r.Alive() != 2 {
		t.Errorf("alive = %d, want 2", r.Alive())
	}
}

func TestShardRunnerMaxAttemptsFatal(t *testing.T) {
	r, err := NewShardRunner(ShardOptions{Shards: 2, Sleep: noSleep, MaxAttempts: 3, DeathAfter: 10})
	if err != nil {
		t.Fatal(err)
	}
	tasks := makeTasks(4, 2)
	err = r.Run(tasks, func(shard int, task ShardTask) error {
		if task.ID == 1 {
			return errors.New("always fails")
		}
		fill(task)
		return nil
	})
	if err == nil {
		t.Fatal("task that fails everywhere should fail the run")
	}
}

func TestShardRunnerAllDeadFatal(t *testing.T) {
	r, err := NewShardRunner(ShardOptions{Shards: 2, Sleep: noSleep, DeathAfter: 1, MaxAttempts: 20})
	if err != nil {
		t.Fatal(err)
	}
	tasks := makeTasks(6, 2)
	err = r.Run(tasks, func(shard int, task ShardTask) error {
		return errors.New("everything is on fire")
	})
	if err == nil {
		t.Fatal("all shards dying should fail the run")
	}
	if r.Alive() != 0 {
		t.Errorf("alive = %d, want 0", r.Alive())
	}
	// a runner with no capacity refuses further runs
	if err := r.Run(makeTasks(1, 1), func(int, ShardTask) error { return nil }); err == nil {
		t.Error("run with zero alive shards should error")
	}
}

func TestShardRunnerReviveRestoresCapacity(t *testing.T) {
	r, err := NewShardRunner(ShardOptions{Shards: 2, Sleep: noSleep, DeathAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.Revoke(0)
	r.Revoke(1)
	if r.Alive() != 0 {
		t.Fatalf("alive = %d after revoking all", r.Alive())
	}
	r.Revive(0)
	tasks := makeTasks(3, 1)
	if err := r.Run(tasks, func(shard int, task ShardTask) error {
		if shard != 0 {
			return fmt.Errorf("task ran on dead shard %d", shard)
		}
		fill(task)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	checkAllDone(t, tasks)
}

func TestShardRunnerNaNValidation(t *testing.T) {
	r, err := NewShardRunner(ShardOptions{Shards: 2, Sleep: noSleep, DeathAfter: 5})
	if err != nil {
		t.Fatal(err)
	}
	nan := float32(math.NaN())
	var corrupted atomic.Bool
	tasks := makeTasks(4, 2)
	if err := r.Run(tasks, func(shard int, task ShardTask) error {
		fill(task)
		if task.ID == 3 && !corrupted.Swap(true) {
			task.Y[0] = complex(nan, 0) // silent corruption, exactly once
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	checkAllDone(t, tasks) // the corrupted attempt must have been recomputed
}

func TestShardRunnerNoValidateLetsNaNThrough(t *testing.T) {
	r, err := NewShardRunner(ShardOptions{Shards: 1, Sleep: noSleep, NoValidate: true})
	if err != nil {
		t.Fatal(err)
	}
	nan := float32(math.NaN())
	tasks := makeTasks(1, 1)
	execs := 0
	if err := r.Run(tasks, func(shard int, task ShardTask) error {
		execs++
		task.Y[0] = complex(nan, nan)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if execs != 1 {
		t.Errorf("NoValidate re-executed the task %d times", execs)
	}
}

func TestShardRunnerRejectsConcurrentRun(t *testing.T) {
	r, err := NewShardRunner(ShardOptions{Shards: 1, Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	tasks := makeTasks(1, 1)
	go func() {
		done <- r.Run(tasks, func(shard int, task ShardTask) error {
			close(started)
			<-release
			fill(task)
			return nil
		})
	}()
	<-started
	if err := r.Run(makeTasks(1, 1), func(int, ShardTask) error { return nil }); err == nil {
		t.Error("concurrent Run should be rejected")
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestShardRunnerEmptyTasks(t *testing.T) {
	r, err := NewShardRunner(ShardOptions{Shards: 3, Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(nil, func(int, ShardTask) error {
		t.Error("exec called with no tasks")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
