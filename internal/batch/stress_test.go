// Concurrency stress tests for the sharded scheduler, meant to run
// under -race (`make race-stress`): many rounds of sharded execution
// with mid-flight shard revocation and revival hammering the worker /
// failover synchronization. Guarded by testing.Short so quick suites
// skip them.
package batch

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestStressShardRunnerMidFlightRevocation(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; run via make race-stress")
	}
	for _, shards := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			r, err := NewShardRunner(ShardOptions{Shards: shards, Sleep: noSleep, MaxAttempts: 64, DeathAfter: 1 << 30})
			if err != nil {
				t.Fatal(err)
			}
			const rounds = 20
			for round := 0; round < rounds; round++ {
				tasks := makeTasks(4*shards, 3)
				stop := make(chan struct{})
				revoked := make(chan struct{})
				go func() {
					defer close(revoked)
					// revoke a rotating victim mid-run, then revive it so the
					// next round starts at full capacity
					victim := round % shards
					r.Revoke(victim)
					select {
					case <-stop:
					case <-time.After(time.Millisecond):
					}
					r.Revive(victim)
				}()
				err := r.Run(tasks, func(shard int, task ShardTask) error {
					fill(task)
					return nil
				})
				close(stop)
				<-revoked
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				checkAllDone(t, tasks)
			}
		})
	}
}

func TestStressShardRunnerFlakyExecutors(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; run via make race-stress")
	}
	r, err := NewShardRunner(ShardOptions{Shards: 6, Sleep: noSleep, MaxAttempts: 32, DeathAfter: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	for round := 0; round < 10; round++ {
		tasks := makeTasks(48, 2)
		err := r.Run(tasks, func(shard int, task ShardTask) error {
			// deterministic-per-attempt flakiness: every 5th execution fails
			if n.Add(1)%5 == 0 {
				return fmt.Errorf("flaky attempt")
			}
			fill(task)
			return nil
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		checkAllDone(t, tasks)
	}
	if r.Alive() != 6 {
		t.Errorf("alive = %d, want 6", r.Alive())
	}
}
