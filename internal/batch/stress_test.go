// Concurrency stress tests for the sharded scheduler, meant to run
// under -race (`make race-stress`): many rounds of sharded execution
// with mid-flight shard revocation and revival hammering the worker /
// failover synchronization. Guarded by testing.Short so quick suites
// skip them.
package batch

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestStressShardRunnerMidFlightRevocation(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; run via make race-stress")
	}
	for _, shards := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			r, err := NewShardRunner(ShardOptions{Shards: shards, Sleep: noSleep, MaxAttempts: 64, DeathAfter: 1 << 30})
			if err != nil {
				t.Fatal(err)
			}
			const rounds = 20
			for round := 0; round < rounds; round++ {
				tasks := makeTasks(4*shards, 3)
				stop := make(chan struct{})
				revoked := make(chan struct{})
				go func() {
					defer close(revoked)
					// revoke a rotating victim mid-run, then revive it so the
					// next round starts at full capacity
					victim := round % shards
					r.Revoke(victim)
					select {
					case <-stop:
					case <-time.After(time.Millisecond):
					}
					r.Revive(victim)
				}()
				err := r.Run(tasks, func(shard int, task ShardTask) error {
					fill(task)
					return nil
				})
				close(stop)
				<-revoked
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				checkAllDone(t, tasks)
			}
		})
	}
}

func TestStressShardRunnerFlakyExecutors(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; run via make race-stress")
	}
	r, err := NewShardRunner(ShardOptions{Shards: 6, Sleep: noSleep, MaxAttempts: 32, DeathAfter: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	for round := 0; round < 10; round++ {
		tasks := makeTasks(48, 2)
		err := r.Run(tasks, func(shard int, task ShardTask) error {
			// deterministic-per-attempt flakiness: every 5th execution fails
			if n.Add(1)%5 == 0 {
				return fmt.Errorf("flaky attempt")
			}
			fill(task)
			return nil
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		checkAllDone(t, tasks)
	}
	if r.Alive() != 6 {
		t.Errorf("alive = %d, want 6", r.Alive())
	}
}

// TestStressWorkStealingRankSkew deals one shard ~10x the work of its
// peers (the rank-skewed tile-row distribution of a real TLR factor) and
// verifies the idle shards actually steal: the run completes, the steal
// counter moves, nobody dies, and the outputs are bitwise identical to a
// strict round-robin (DisableStealing) run of the same task set.
func TestStressWorkStealingRankSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; run via make race-stress")
	}
	const shards = 4
	r, err := NewShardRunner(ShardOptions{Shards: shards, Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewShardRunner(ShardOptions{Shards: shards, Sleep: noSleep, DisableStealing: true})
	if err != nil {
		t.Fatal(err)
	}

	wasEnabled := obs.Enabled()
	obs.Enable()
	defer func() {
		if !wasEnabled {
			obs.Disable()
		}
	}()

	// exec simulates skewed per-task cost: tasks dealt round-robin to
	// shard 0 (ID % shards == 0) dominate the run while the rest are
	// effectively free, so the other shards drain their deques and go
	// thieving. The output is a pure function of the task ID, never of
	// the shard.
	exec := func(shard int, task ShardTask) error {
		if task.ID%shards == 0 {
			time.Sleep(2 * time.Millisecond)
		}
		fill(task)
		return nil
	}

	for round := 0; round < 5; round++ {
		before := obs.TakeSnapshot().Counter("batch.shard.steals")
		stolen := makeTasks(8*shards, 3)
		if err := r.Run(stolen, exec); err != nil {
			t.Fatalf("round %d (stealing): %v", round, err)
		}
		checkAllDone(t, stolen)
		steals := obs.TakeSnapshot().Counter("batch.shard.steals") - before
		if steals == 0 {
			t.Fatalf("round %d: rank-skewed run recorded zero steals", round)
		}
		if r.Alive() != shards {
			t.Fatalf("round %d: alive = %d, want %d (stealing must not trip the death policy)", round, r.Alive(), shards)
		}

		pinned := makeTasks(8*shards, 3)
		if err := rr.Run(pinned, exec); err != nil {
			t.Fatalf("round %d (round-robin): %v", round, err)
		}
		for i := range stolen {
			for k := range stolen[i].Y {
				if stolen[i].Y[k] != pinned[i].Y[k] {
					t.Fatalf("round %d: task %d output %d differs between stealing and round-robin schedules", round, i, k)
				}
			}
		}
	}
}
