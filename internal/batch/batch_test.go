package batch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cfloat"
	"repro/internal/dense"
)

// buildBatch makes n independent MVMs with variable shapes, returning the
// tasks plus reference outputs computed directly.
func buildBatch(rng *rand.Rand, n int, op Op) ([]MVM, [][]complex64) {
	tasks := make([]MVM, n)
	refs := make([][]complex64, n)
	for i := range tasks {
		m := 1 + rng.Intn(40)
		nn := 1 + rng.Intn(40)
		a := dense.Random(rng, m, nn)
		xin, yout := nn, m
		if op == OpC {
			xin, yout = m, nn
		}
		x := dense.Random(rng, xin, 1).Data
		tasks[i] = MVM{
			Oper: op, M: m, N: nn, Alpha: 1,
			A: a.Data, LDA: m, X: x, Y: make([]complex64, yout),
		}
		ref := make([]complex64, yout)
		if op == OpC {
			a.MulVecConjTrans(x, ref)
		} else {
			a.MulVec(x, ref)
		}
		refs[i] = ref
	}
	return tasks, refs
}

func checkAgainst(t *testing.T, tasks []MVM, refs [][]complex64, tol float64) {
	t.Helper()
	for i := range tasks {
		diff := make([]complex64, len(refs[i]))
		for j := range diff {
			diff[j] = tasks[i].Y[j] - refs[i][j]
		}
		if rel := cfloat.Nrm2(diff) / (1 + cfloat.Nrm2(refs[i])); rel > tol {
			t.Fatalf("task %d: error %g", i, rel)
		}
	}
}

func TestRunMatchesDirectGemv(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tasks, refs := buildBatch(rng, 50, OpN)
	if err := Run(tasks, Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	checkAgainst(t, tasks, refs, 1e-5)
}

func TestRunAdjointBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tasks, refs := buildBatch(rng, 30, OpC)
	if err := Run(tasks, Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	checkAgainst(t, tasks, refs, 1e-5)
}

func TestFourRealDecompositionMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tasks, refs := buildBatch(rng, 40, OpN)
	if err := Run(tasks, Options{Workers: 4, FourReal: true}); err != nil {
		t.Fatal(err)
	}
	checkAgainst(t, tasks, refs, 1e-4)
}

func TestSerialFallbackSmallBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tasks, refs := buildBatch(rng, 3, OpN)
	// force the serial path with a huge MinParallelWork
	if err := Run(tasks, Options{Workers: 8, MinParallelWork: 1 << 40}); err != nil {
		t.Fatal(err)
	}
	checkAgainst(t, tasks, refs, 1e-5)
}

func TestAlphaBeta(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, n := 6, 4
	a := dense.Random(rng, m, n)
	x := dense.Random(rng, n, 1).Data
	y0 := dense.Random(rng, m, 1).Data
	y := append([]complex64(nil), y0...)
	task := MVM{Oper: OpN, M: m, N: n, Alpha: 2i, A: a.Data, LDA: m, X: x, Beta: 0.5, Y: y}
	if err := Run([]MVM{task}, Options{}); err != nil {
		t.Fatal(err)
	}
	ref := make([]complex64, m)
	a.MulVec(x, ref)
	for i := range ref {
		want := 2i*ref[i] + 0.5*y0[i]
		d := y[i] - want
		if math.Hypot(float64(real(d)), float64(imag(d))) > 1e-4*(1+math.Hypot(float64(real(want)), float64(imag(want)))) {
			t.Fatalf("alpha/beta at %d: %v vs %v", i, y[i], want)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	good := MVM{Oper: OpN, M: 2, N: 2, Alpha: 1, A: make([]complex64, 4), LDA: 2,
		X: make([]complex64, 2), Y: make([]complex64, 2)}
	cases := []func(MVM) MVM{
		func(m MVM) MVM { m.M = 0; return m },
		func(m MVM) MVM { m.LDA = 1; return m },
		func(m MVM) MVM { m.A = m.A[:2]; return m },
		func(m MVM) MVM { m.X = m.X[:1]; return m },
		func(m MVM) MVM { m.Y = nil; return m },
	}
	for i, mut := range cases {
		if err := Run([]MVM{mut(good)}, Options{}); err == nil {
			t.Errorf("case %d: invalid MVM accepted", i)
		}
	}
}

func TestSizeClassesAndWork(t *testing.T) {
	tasks := []MVM{
		{M: 4, N: 8}, {M: 4, N: 8}, {M: 2, N: 3},
	}
	classes := SizeClasses(tasks)
	if classes[[2]int{4, 8}] != 2 || classes[[2]int{2, 3}] != 1 {
		t.Errorf("classes %v", classes)
	}
	if TotalWork(tasks) != 4*8+4*8+2*3 {
		t.Error("TotalWork wrong")
	}
}

func TestPropertyParallelEqualsSerial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		tasks, _ := buildBatch(rng, n, OpN)
		// clone the batch sharing A/X but with fresh outputs
		tasksS := make([]MVM, n)
		copy(tasksS, tasks)
		for i := range tasksS {
			tasksS[i].Y = make([]complex64, len(tasks[i].Y))
		}
		if err := Run(tasksS, Options{Workers: 1}); err != nil {
			return false
		}
		if err := Run(tasks, Options{Workers: 8, MinParallelWork: 1}); err != nil {
			return false
		}
		for i := range tasks {
			for j := range tasks[i].Y {
				if tasks[i].Y[j] != tasksS[i].Y[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBatch256VariableRank(b *testing.B) {
	// a TLR-like batch: 256 MVMs with ranks 1..16 against nb=48 tiles
	rng := rand.New(rand.NewSource(1))
	var tasks []MVM
	for i := 0; i < 256; i++ {
		k := 1 + rng.Intn(16)
		a := dense.Random(rng, 48, k)
		tasks = append(tasks, MVM{
			Oper: OpN, M: 48, N: k, Alpha: 1, A: a.Data, LDA: 48,
			X: dense.Random(rng, k, 1).Data, Y: make([]complex64, 48),
		})
	}
	b.SetBytes(8 * TotalWork(tasks))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Run(tasks, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatch256Serial(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var tasks []MVM
	for i := 0; i < 256; i++ {
		k := 1 + rng.Intn(16)
		a := dense.Random(rng, 48, k)
		tasks = append(tasks, MVM{
			Oper: OpN, M: 48, N: k, Alpha: 1, A: a.Data, LDA: 48,
			X: dense.Random(rng, k, 1).Data, Y: make([]complex64, 48),
		})
	}
	b.SetBytes(8 * TotalWork(tasks))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Run(tasks, Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
