// Sharded execution: the paper's headline run spreads the TLR-MVM
// frequency fan-out over 48 physical CS-2 systems (§7). This file is the
// failure-domain-aware version of that fan-out: independent per-frequency
// tasks are assigned to N simulated shards, and when a shard misbehaves —
// returns errors, goes silent, or emits corrupted (NaN) output — its
// orphaned tasks are re-sharded onto the survivors with bounded retries
// and exponential backoff. Retries, failovers, deaths, and the surviving
// capacity are all published through the obs registry so degraded-mode
// throughput is observable, not silent.
package batch

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Sharded-execution metrics: per-Run timer plus counters for executed
// attempts, same-shard retries, cross-shard failovers, and shard deaths;
// the alive gauge reports the post-run surviving capacity (degraded-mode
// throughput is execs over the run timer at that capacity).
var (
	obsShardRun       = obs.NewTimer("batch.shard.run")
	obsShardExecs     = obs.NewCounter("batch.shard.execs")
	obsShardRetries   = obs.NewCounter("batch.shard.retries")
	obsShardFailovers = obs.NewCounter("batch.shard.failovers")
	obsShardDeaths    = obs.NewCounter("batch.shard.deaths")
	obsShardSteals    = obs.NewCounter("batch.shard.steals")
	obsShardAlive     = obs.NewGauge("batch.shard.alive")
)

// ShardTask is one unit of sharded work: an input view and the disjoint
// output view its executor must fully overwrite. ID is caller-defined
// (the MDC fan-out uses the frequency index).
type ShardTask struct {
	ID   int
	X, Y []complex64
}

// ShardExec executes one task on one shard. It must fully overwrite
// task.Y on success so a retried task leaves no stale partial output.
type ShardExec func(shard int, task ShardTask) error

// ShardOptions configures a ShardRunner.
type ShardOptions struct {
	// Shards is the number of simulated systems (≥ 1).
	Shards int
	// MaxAttempts bounds how many times one task may execute across all
	// shards before the run fails (default 4).
	MaxAttempts int
	// DeathAfter is the consecutive-failure count that declares a shard
	// dead and triggers failover of its queue (default 2).
	DeathAfter int
	// Backoff is the base delay before a failed task re-executes; it
	// doubles with each attempt (default 1ms). Capped by MaxBackoff
	// (default 50ms).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// NoValidate disables the NaN scan of task outputs. By default a
	// successful execution whose output contains NaN is treated as a
	// shard failure (corrupted-result detection).
	NoValidate bool
	// DisableStealing pins every task to the shard it was dealt to
	// (except death failover), restoring the strict round-robin draining
	// order. Tasks are normally scheduled work-stealing: each shard owns
	// a LIFO deque and an idle shard steals the oldest task from the
	// most-loaded live peer, which bounds the tail when per-task work is
	// skewed. Outputs are bitwise independent of which shard computes
	// them, so stealing never changes results — only schedules. The
	// deterministic failover benchmarks disable it so their retry and
	// failover counts stay a pure function of the fault schedule.
	DisableStealing bool
	// Sleep replaces time.Sleep for the backoff delays (tests inject a
	// no-op to keep deterministic schedules fast).
	Sleep func(time.Duration)
}

func (o ShardOptions) withDefaults() ShardOptions {
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 4
	}
	if o.DeathAfter == 0 {
		o.DeathAfter = 2
	}
	if o.Backoff == 0 {
		o.Backoff = time.Millisecond
	}
	if o.MaxBackoff == 0 {
		o.MaxBackoff = 50 * time.Millisecond
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	return o
}

// ShardRunner owns the health state of a set of simulated shards across
// runs: a shard that dies (or is revoked) stays dead for subsequent
// Run calls, the way a failed physical system stays out of the job until
// an operator revives it.
type ShardRunner struct {
	opts ShardOptions

	mu   sync.Mutex
	cond *sync.Cond
	dead []bool
	// per-run state, guarded by mu
	running   bool
	tasks     []ShardTask
	queues    [][]pendingTask
	consec    []int
	remaining int
	fatal     error
	rr        int
}

type pendingTask struct {
	idx      int // index into tasks
	attempts int // completed (failed) execution attempts
}

// NewShardRunner validates the options and returns a runner with every
// shard alive.
func NewShardRunner(opts ShardOptions) (*ShardRunner, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("batch: shard count %d < 1", opts.Shards)
	}
	r := &ShardRunner{opts: opts.withDefaults(), dead: make([]bool, opts.Shards)}
	r.cond = sync.NewCond(&r.mu)
	return r, nil
}

// Shards returns the configured shard count.
func (r *ShardRunner) Shards() int { return r.opts.Shards }

// Alive returns the number of live shards.
func (r *ShardRunner) Alive() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.aliveLocked()
}

func (r *ShardRunner) aliveLocked() int {
	n := 0
	for _, d := range r.dead {
		if !d {
			n++
		}
	}
	return n
}

// Dead reports whether a shard has been declared dead.
func (r *ShardRunner) Dead(shard int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return shard >= 0 && shard < len(r.dead) && r.dead[shard]
}

// Revoke declares a shard dead from outside — mid-flight revocation is
// allowed and re-shards the shard's queued tasks onto survivors. A task
// currently executing on the revoked shard is kept if it succeeds.
func (r *ShardRunner) Revoke(shard int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if shard < 0 || shard >= len(r.dead) || r.dead[shard] {
		return
	}
	r.killLocked(shard)
	r.cond.Broadcast()
}

// Revive returns a dead shard to service (the operator action after a
// failed system is replaced).
func (r *ShardRunner) Revive(shard int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if shard >= 0 && shard < len(r.dead) {
		r.dead[shard] = false
		if shard < len(r.consec) {
			r.consec[shard] = 0
		}
	}
}

// killLocked marks a shard dead and fails its queue over to survivors.
func (r *ShardRunner) killLocked(shard int) {
	r.dead[shard] = true
	obsShardDeaths.Add(1)
	if r.queues == nil {
		return
	}
	orphans := r.queues[shard]
	r.queues[shard] = nil
	if len(orphans) > 0 {
		obsShardFailovers.Add(int64(len(orphans)))
		for _, p := range orphans {
			if !r.enqueueLocked(p) {
				return
			}
		}
	}
	if r.aliveLocked() == 0 && r.remaining > 0 && r.fatal == nil {
		r.fatal = fmt.Errorf("batch: all %d shards dead with %d tasks outstanding", len(r.dead), r.remaining)
	}
}

// enqueueLocked places a pending task on the next alive shard
// round-robin. Returns false when no shard is alive (fatal is set).
func (r *ShardRunner) enqueueLocked(p pendingTask) bool {
	for probe := 0; probe < len(r.dead); probe++ {
		s := r.rr % len(r.dead)
		r.rr++
		if !r.dead[s] {
			r.queues[s] = append(r.queues[s], p)
			return true
		}
	}
	if r.fatal == nil {
		r.fatal = fmt.Errorf("batch: all %d shards dead with %d tasks outstanding", len(r.dead), r.remaining)
	}
	return false
}

// Run executes every task, tolerating shard failures: a failing task
// backs off exponentially and retries; a shard that fails DeathAfter
// consecutive tasks (or is revoked) dies and its queue fails over to the
// survivors; a task that cannot complete within MaxAttempts anywhere, or
// the death of the last shard, fails the run. Task outputs are bitwise
// independent of which shard computed them, so a degraded run returns
// exactly the healthy run's answer. Run must not be called concurrently
// with itself on one runner.
func (r *ShardRunner) Run(tasks []ShardTask, exec ShardExec) error {
	defer obsShardRun.Start().End()
	r.mu.Lock()
	if r.running {
		r.mu.Unlock()
		return fmt.Errorf("batch: ShardRunner.Run called concurrently")
	}
	if r.aliveLocked() == 0 {
		r.mu.Unlock()
		return fmt.Errorf("batch: no alive shards (0 of %d)", len(r.dead))
	}
	r.running = true
	r.tasks = tasks
	r.queues = make([][]pendingTask, len(r.dead))
	r.consec = make([]int, len(r.dead))
	r.remaining = len(tasks)
	r.fatal = nil
	r.rr = 0
	for i := range tasks {
		if !r.enqueueLocked(pendingTask{idx: i}) {
			break
		}
	}
	r.mu.Unlock()

	var wg sync.WaitGroup
	for s := 0; s < len(r.dead); s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			r.worker(s, exec)
		}(s)
	}
	wg.Wait()

	r.mu.Lock()
	err := r.fatal
	alive := r.aliveLocked()
	r.running = false
	r.tasks, r.queues, r.consec = nil, nil, nil
	r.mu.Unlock()
	obsShardAlive.Set(int64(alive))
	return err
}

// worker is the per-shard execution loop: drain the shard's own deque,
// then steal; park only when neither yields a task.
func (r *ShardRunner) worker(shard int, exec ShardExec) {
	for {
		r.mu.Lock()
		var p pendingTask
		for {
			if r.fatal != nil || r.remaining == 0 || r.dead[shard] {
				r.mu.Unlock()
				return
			}
			var ok bool
			if p, ok = r.dequeueLocked(shard); ok {
				break
			}
			//lint:ctx-ok wakeup protocol: Run broadcasts on every enqueue, on fatal error, and when remaining hits zero, and the loop rechecks its exit predicate under r.mu before parking again
			r.cond.Wait()
		}
		task := r.tasks[p.idx]
		r.mu.Unlock()

		obsShardExecs.Add(1)
		err := exec(shard, task)
		if err == nil && !r.opts.NoValidate {
			err = validateOutput(task)
		}

		if err == nil {
			r.mu.Lock()
			r.consec[shard] = 0
			r.remaining--
			if r.remaining == 0 {
				r.cond.Broadcast()
			}
			r.mu.Unlock()
			continue
		}
		r.onFailure(shard, p, err)
	}
}

// dequeueLocked takes the next task for a shard: the newest entry of its
// own deque (LIFO — retries and fresh deals run hottest-first), else,
// unless stealing is disabled, the oldest fresh entry of the most-loaded
// live peer (FIFO from the victim's cold end, the classic work-stealing
// split that minimizes contention with the owner). Two carve-outs keep
// the failure semantics intact under stealing: only fresh tasks (zero
// attempts) are stealable, so a retried task stays pinned to its shard
// and the consecutive-failure death policy observes the same executions
// it would without stealing; and a steal always leaves the victim at
// least one task, so a misbehaving shard cannot be drained by its peers
// before it ever executes (and earns its death).
func (r *ShardRunner) dequeueLocked(shard int) (pendingTask, bool) {
	if q := r.queues[shard]; len(q) > 0 {
		p := q[len(q)-1]
		r.queues[shard] = q[:len(q)-1]
		return p, true
	}
	if r.opts.DisableStealing {
		return pendingTask{}, false
	}
	// best counts only queues holding a stealable entry, so a long
	// all-retries queue never shadows a shorter stealable one.
	victim, vidx, best := -1, -1, 1
	for s := range r.queues {
		if s == shard || r.dead[s] || len(r.queues[s]) <= best {
			continue
		}
		for k := range r.queues[s] {
			if r.queues[s][k].attempts == 0 {
				victim, vidx, best = s, k, len(r.queues[s])
				break
			}
		}
	}
	if victim < 0 {
		return pendingTask{}, false
	}
	p := r.queues[victim][vidx]
	r.queues[victim] = append(r.queues[victim][:vidx], r.queues[victim][vidx+1:]...)
	obsShardSteals.Add(1)
	return p, true
}

// onFailure applies the retry / death / failover policy to one failed
// execution attempt.
func (r *ShardRunner) onFailure(shard int, p pendingTask, err error) {
	p.attempts++
	r.mu.Lock()
	r.consec[shard]++
	if !r.dead[shard] && r.consec[shard] >= r.opts.DeathAfter {
		r.killLocked(shard)
	}
	if p.attempts >= r.opts.MaxAttempts {
		if r.fatal == nil {
			r.fatal = fmt.Errorf("batch: task %d failed after %d attempts: %w", r.tasks[p.idx].ID, p.attempts, err)
		}
		r.cond.Broadcast()
		r.mu.Unlock()
		return
	}
	deadHere := r.dead[shard]
	// Wake waiters now: killLocked may have re-queued orphans onto their
	// shards or set fatal, and the backoff below must not delay them.
	r.cond.Broadcast()
	r.mu.Unlock()

	// Exponential backoff outside the lock so other shards keep draining.
	delay := r.opts.Backoff << (p.attempts - 1)
	if delay > r.opts.MaxBackoff {
		delay = r.opts.MaxBackoff
	}
	r.opts.Sleep(delay)

	r.mu.Lock()
	if r.fatal == nil {
		if !deadHere && !r.dead[shard] {
			// Shard still trusted: retry in place.
			obsShardRetries.Add(1)
			r.queues[shard] = append(r.queues[shard], p)
		} else {
			// Orphaned by a death: fail over to a survivor.
			obsShardFailovers.Add(1)
			r.enqueueLocked(p)
		}
	}
	r.cond.Broadcast()
	r.mu.Unlock()
}

// validateOutput treats NaN in a task's output as a shard fault: a
// corrupted result must trigger recomputation, not propagate into the
// solver. Self-comparison detects NaN without widening the components.
func validateOutput(t ShardTask) error {
	for i, v := range t.Y {
		re, im := real(v), imag(v)
		if re != re || im != im {
			return fmt.Errorf("batch: task %d produced NaN at output %d", t.ID, i)
		}
	}
	return nil
}
