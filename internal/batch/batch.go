// Package batch is a variable-size batched-MVM execution engine — the
// capability the paper finds missing from vendor libraries ("the current
// NVIDIA and AMD software ecosystems do not provide support for batched
// execution required to effectively launch TLR-MVM with complex precisions
// and variable ranks", §4). A batch collects many independent complex
// MVMs of heterogeneous shapes; the engine groups them into size classes,
// schedules the classes over a worker pool largest-first (LPT scheduling,
// which bounds load imbalance), and executes each MVM either natively in
// complex arithmetic or as four real MVMs (the §6.6 decomposition).
package batch

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/cfloat"
	"repro/internal/obs"
)

// Batch-engine metrics: one timer per Run, counters for members and
// scheduled fmac work (2 flops each in the §6.6 convention).
var (
	obsRun   = obs.NewTimer("batch.run")
	obsTasks = obs.NewCounter("batch.tasks")
	obsMeter = obs.NewMeter("batch.run")
)

// Op selects how each MVM applies its matrix.
type Op int

const (
	// OpN computes y = A x.
	OpN Op = iota
	// OpC computes y = Aᴴ x.
	OpC
)

// MVM is one batch member: y ← alpha·op(A)·x + beta·y with A m×n
// column-major at stride lda.
type MVM struct {
	Oper  Op
	M, N  int
	Alpha complex64
	A     []complex64
	// AR/AI optionally carry the matrix as presplit float32 real and
	// imaginary planes (the SoA layout of internal/cfloat/soa.go). When
	// both are set, A may be nil and the member executes on the split
	// planes directly — no per-member SplitReIm the way FourReal must.
	// SoA members require Alpha == 1 and Beta == 0; both OpN and OpC are
	// supported.
	AR, AI []float32
	LDA    int
	X      []complex64
	Beta   complex64
	Y      []complex64
}

// soa reports whether the member carries presplit matrix planes.
func (t MVM) soa() bool { return t.AR != nil && t.AI != nil }

// work returns the fmac count, the scheduling weight.
func (t MVM) work() int64 { return int64(t.M) * int64(t.N) }

func (t MVM) validate(i int) error {
	if t.M <= 0 || t.N <= 0 {
		return fmt.Errorf("batch: MVM %d has dimensions %dx%d", i, t.M, t.N)
	}
	if t.LDA < t.M {
		return fmt.Errorf("batch: MVM %d has lda %d < m %d", i, t.LDA, t.M)
	}
	need := t.LDA*(t.N-1) + t.M
	if t.soa() {
		if len(t.AR) < need || len(t.AI) < need {
			return fmt.Errorf("batch: MVM %d split matrix planes too short", i)
		}
		if t.Alpha != 1 || t.Beta != 0 {
			return fmt.Errorf("batch: MVM %d SoA member requires alpha=1 beta=0", i)
		}
	} else if len(t.A) < need {
		return fmt.Errorf("batch: MVM %d matrix buffer too short", i)
	}
	xin, yout := t.N, t.M
	if t.Oper == OpC {
		xin, yout = t.M, t.N
	}
	if len(t.X) < xin {
		return fmt.Errorf("batch: MVM %d x too short (%d < %d)", i, len(t.X), xin)
	}
	if len(t.Y) < yout {
		return fmt.Errorf("batch: MVM %d y too short (%d < %d)", i, len(t.Y), yout)
	}
	return nil
}

// Options configures execution.
type Options struct {
	// Workers bounds the parallelism (0 = GOMAXPROCS).
	Workers int
	// FourReal executes each complex MVM as four real MVMs on split
	// real/imaginary planes, as the CS-2 kernel must (§6.6). Only OpN
	// members support it; the engine falls back to native complex for OpC.
	FourReal bool
	// MinParallelWork is the fmac count below which the whole batch runs
	// on the caller's goroutine (default 4096).
	MinParallelWork int64
}

// Run executes every MVM of the batch. Members must write to disjoint Y
// slices (the usual TLR-MVM batches do: one output segment per tile).
//
//lint:alloc-ok the dispatch channel and worker goroutines are the engine's per-Run overhead, amortized across the whole batch; per-member work is allocation-free
func Run(tasks []MVM, opts Options) error {
	var total int64
	for i := range tasks {
		if err := tasks[i].validate(i); err != nil {
			return err
		}
		total += tasks[i].work()
	}
	defer obsRun.Start().End()
	obsTasks.Add(int64(len(tasks)))
	// a complex fmac is 8 real flops and touches A once plus x and y
	obsMeter.Add(8*total, 8*total)
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	minWork := opts.MinParallelWork
	if minWork == 0 {
		minWork = 4096
	}
	if workers == 1 || total < minWork || len(tasks) == 1 {
		for i := range tasks {
			execute(&tasks[i], opts.FourReal)
		}
		return nil
	}
	// LPT schedule: largest tasks first over a shared index queue keeps
	// the tail short without a bin-packing pass
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return tasks[order[a]].work() > tasks[order[b]].work()
	})
	next := make(chan int, len(order))
	for _, i := range order {
		//lint:ctx-ok next is buffered to len(order), so every send lands in a free slot and can never block
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	for w := 0; w < min(workers, len(tasks)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				execute(&tasks[i], opts.FourReal)
			}
		}()
	}
	wg.Wait()
	return nil
}

// execute dispatches one batch member to the four-real decomposition or
// the native complex Gemv. Registered hot path: it runs once per member
// per Run and must stay allocation-free.
//
//lint:hotpath
func execute(t *MVM, fourReal bool) {
	if t.AR != nil {
		runSoA(t)
		return
	}
	if fourReal && t.Oper == OpN && t.Beta == 0 && t.Alpha == 1 && t.LDA == t.M {
		runFourReal(t)
		return
	}
	var tr cfloat.Trans
	if t.Oper == OpC {
		tr = cfloat.ConjTrans
	}
	cfloat.Gemv(tr, t.M, t.N, t.Alpha, t.A, t.LDA, t.X, t.Beta, t.Y)
}

// frScratch holds the split real/imaginary planes of one four-real MVM.
// The buffers grow monotonically to the largest member seen, so a
// steady-state workload stops allocating after warm-up.
type frScratch struct {
	ar, ai []float32 // matrix planes, m·n
	xr, xi []float32 // input planes, n
	yr, yi []float32 // output planes, m
}

// grow ensures capacity; it lives outside the hot-path marker because
// the (re)allocations happen only while buffers ratchet up to the
// workload's steady-state shape.
//
//lint:alloc-ok buffers ratchet monotonically; a steady-state workload stops allocating after warm-up
func (s *frScratch) grow(mn, m, n int) {
	if cap(s.ar) < mn {
		s.ar = make([]float32, mn)
		s.ai = make([]float32, mn)
	}
	if cap(s.xr) < n {
		s.xr = make([]float32, n)
		s.xi = make([]float32, n)
	}
	if cap(s.yr) < m {
		s.yr = make([]float32, m)
		s.yi = make([]float32, m)
	}
}

// frFree recycles four-real scratch across Run calls and workers. A
// channel free list rather than sync.Pool: the pool may drop entries at
// any GC, which would make the AllocsPerRun gate nondeterministic.
var frFree = make(chan *frScratch, 16)

// runFourReal splits the operands and performs the §6.6 four-real-MVM
// decomposition. Registered hot path: the split-plane buffers come from
// the package free list, so the steady state performs no allocations.
//
//lint:hotpath
func runFourReal(t *MVM) {
	var s *frScratch
	select {
	case s = <-frFree:
	default:
		//lint:alloc-ok one-time checkout when the free list is empty; steady state recycles
		s = new(frScratch)
	}
	mn := t.M * t.N
	s.grow(mn, t.M, t.N)
	cfloat.SplitReIm(t.A[:mn], s.ar[:mn], s.ai[:mn])
	cfloat.ComplexMVMViaFourRealBuf(t.M, t.N, s.ar[:mn], s.ai[:mn], t.M, t.X, t.Y,
		s.xr[:t.N], s.xi[:t.N], s.yr[:t.M], s.yi[:t.M])
	select {
	case frFree <- s:
	default:
	}
}

// runSoA executes one presplit member: the matrix planes come with the
// member, so only the vector endpoints are split, into free-list
// scratch. Registered hot path: the steady state performs no
// allocations.
//
//lint:hotpath
func runSoA(t *MVM) {
	var s *frScratch
	select {
	case s = <-frFree:
	default:
		//lint:alloc-ok one-time checkout when the free list is empty; steady state recycles
		s = new(frScratch)
	}
	k := max(t.M, t.N)
	s.grow(0, k, k)
	if t.Oper == OpC {
		cfloat.GemvConjSoA(t.M, t.N, t.AR, t.AI, t.LDA, t.X, t.Y, s.xr, s.xi, s.yr, s.yi)
	} else {
		cfloat.GemvSoA(t.M, t.N, t.AR, t.AI, t.LDA, t.X, t.Y, s.xr, s.xi, s.yr, s.yi)
	}
	select {
	case frFree <- s:
	default:
	}
}

// SizeClasses groups the batch members by (m, n) shape, reporting how
// irregular the batch is — the variable-rank irregularity that defeats
// fixed-shape vendor batching.
func SizeClasses(tasks []MVM) map[[2]int]int {
	out := make(map[[2]int]int)
	for _, t := range tasks {
		out[[2]int{t.M, t.N}]++
	}
	return out
}

// TotalWork returns the aggregate fmac count.
func TotalWork(tasks []MVM) int64 {
	var w int64
	for _, t := range tasks {
		w += t.work()
	}
	return w
}
