// Differential tests for the batched-MVM engine: every scheduling and
// execution mode (serial, parallel LPT, four-real decomposition) must
// produce the same numbers as direct per-member Gemv calls.
// External test package: testkit depends on batch transitively via tlr.
package batch_test

import (
	"math/rand"
	"testing"

	"repro/internal/batch"
	"repro/internal/cfloat"
	"repro/internal/testkit"
)

// heterogeneousBatch builds nTasks MVMs with variable shapes — the
// variable-rank irregularity (§4) the engine exists for — half forward,
// half adjoint, writing to disjoint outputs.
func heterogeneousBatch(rng *rand.Rand, nTasks int) ([]batch.MVM, [][]complex64) {
	tasks := make([]batch.MVM, 0, nTasks)
	outs := make([][]complex64, 0, nTasks)
	for i := 0; i < nTasks; i++ {
		m := 1 + rng.Intn(24)
		n := 1 + rng.Intn(24)
		op := batch.OpN
		if i%2 == 1 {
			op = batch.OpC
		}
		a := testkit.Vec(rng, m*n)
		xin := n
		yout := m
		if op == batch.OpC {
			xin, yout = m, n
		}
		x := testkit.Vec(rng, xin)
		y := make([]complex64, yout)
		outs = append(outs, y)
		tasks = append(tasks, batch.MVM{
			Oper: op, M: m, N: n, Alpha: 1, A: a, LDA: m, X: x, Y: y,
		})
	}
	return tasks, outs
}

// reference computes each member directly with cfloat.Gemv.
func reference(tasks []batch.MVM) [][]complex64 {
	outs := make([][]complex64, len(tasks))
	for i, tk := range tasks {
		tr := cfloat.NoTrans
		yout := tk.M
		if tk.Oper == batch.OpC {
			tr = cfloat.ConjTrans
			yout = tk.N
		}
		y := make([]complex64, yout)
		cfloat.Gemv(tr, tk.M, tk.N, tk.Alpha, tk.A, tk.LDA, tk.X, 0, y)
		outs[i] = y
	}
	return outs
}

func TestDifferentialSchedulingModes(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		tasks, outs := heterogeneousBatch(testkit.NewRNG(31), 40)
		want := reference(tasks)
		if err := batch.Run(tasks, batch.Options{Workers: workers, MinParallelWork: 1}); err != nil {
			t.Fatal(err)
		}
		for i := range outs {
			// identical arithmetic, only the schedule differs: bitwise equal
			if d := testkit.MaxULPDist(outs[i], want[i]); d != 0 {
				t.Fatalf("workers=%d member %d: %d ULPs from direct Gemv", workers, i, d)
			}
		}
	}
}

func TestDifferentialFourRealDecomposition(t *testing.T) {
	// FourReal reorders the complex arithmetic into four real sweeps
	// (§6.6): equal up to float32 rounding, not bitwise.
	rng := testkit.NewRNG(32)
	tasks := make([]batch.MVM, 0, 20)
	outs := make([][]complex64, 0, 20)
	for i := 0; i < 20; i++ {
		m := 1 + rng.Intn(30)
		n := 1 + rng.Intn(30)
		y := make([]complex64, m)
		outs = append(outs, y)
		tasks = append(tasks, batch.MVM{
			Oper: batch.OpN, M: m, N: n, Alpha: 1,
			A: testkit.Vec(rng, m*n), LDA: m, X: testkit.Vec(rng, n), Y: y,
		})
	}
	want := reference(tasks)
	if err := batch.Run(tasks, batch.Options{Workers: 4, FourReal: true, MinParallelWork: 1}); err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		if e := testkit.RelErr(outs[i], want[i]); e > testkit.ExecTolerance(tasks[i].N) {
			t.Fatalf("member %d (%dx%d): four-real relErr %g", i, tasks[i].M, tasks[i].N, e)
		}
	}
}

func TestDifferentialAlphaBetaAccumulation(t *testing.T) {
	rng := testkit.NewRNG(33)
	m, n := 17, 11
	a := testkit.Vec(rng, m*n)
	x := testkit.Vec(rng, n)
	y0 := testkit.Vec(rng, m)
	alpha, beta := complex64(2-1i), complex64(0.25i)
	got := append([]complex64(nil), y0...)
	err := batch.Run([]batch.MVM{{
		Oper: batch.OpN, M: m, N: n, Alpha: alpha, A: a, LDA: m, X: x, Beta: beta, Y: got,
	}}, batch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := append([]complex64(nil), y0...)
	cfloat.Gemv(cfloat.NoTrans, m, n, alpha, a, m, x, beta, want)
	if d := testkit.MaxULPDist(got, want); d != 0 {
		t.Fatalf("alpha/beta path %d ULPs from Gemv", d)
	}
}
