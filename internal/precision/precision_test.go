package precision

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cfloat"
	"repro/internal/dense"
	"repro/internal/tlr"
)

func TestF16KnownValues(t *testing.T) {
	cases := []struct {
		f    float32
		bits uint16
	}{
		{0, 0x0000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{0.5, 0x3800},
		{2, 0x4000},
		{65504, 0x7BFF},                 // max finite half
		{float32(math.Inf(1)), 0x7C00},  // +Inf
		{float32(math.Inf(-1)), 0xFC00}, // −Inf
		{5.960464477539063e-08, 0x0001}, // smallest subnormal
		{6.097555160522461e-05, 0x03FF}, // largest subnormal
		{6.103515625e-05, 0x0400},       // smallest normal
		{1e9, 0x7C00},                   // overflow → Inf
		{1e-10, 0x0000},                 // underflow → 0
	}
	for _, c := range cases {
		if got := F32ToF16(c.f); got != c.bits {
			t.Errorf("F32ToF16(%g) = %#04x, want %#04x", c.f, got, c.bits)
		}
	}
}

func TestF16RoundTripExactValues(t *testing.T) {
	// every finite half value must round-trip bit-exactly
	for h := uint32(0); h < 0x10000; h++ {
		bits := uint16(h)
		if bits&0x7C00 == 0x7C00 {
			continue // Inf/NaN
		}
		f := F16ToF32(bits)
		back := F32ToF16(f)
		if back != bits {
			t.Fatalf("half %#04x → %g → %#04x", bits, f, back)
		}
	}
}

func TestF16RelativeErrorBound(t *testing.T) {
	// |x − rt(x)| ≤ 2^-11 |x| for normal-range values
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		x := float32(rng.NormFloat64())
		y := F16ToF32(F32ToF16(x))
		if math.Abs(float64(y-x)) > math.Ldexp(1, -11)*math.Abs(float64(x))+1e-12 {
			t.Fatalf("x=%g rt=%g", x, y)
		}
	}
}

func TestF16RoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1.0 and the next half
	// (1 + 2^-10); RNE keeps the even mantissa 1.0
	x := float32(1 + math.Ldexp(1, -11))
	if got := F32ToF16(x); got != 0x3C00 {
		t.Errorf("tie should round to even: %#04x", got)
	}
	// 1 + 3·2^-11 is halfway between 1+2^-10 and 1+2^-9: rounds up to even
	x = float32(1 + 3*math.Ldexp(1, -11))
	if got := F32ToF16(x); got != 0x3C02 {
		t.Errorf("tie should round to even (up): %#04x", got)
	}
}

func TestF16NaN(t *testing.T) {
	nan := float32(math.NaN())
	h := F32ToF16(nan)
	if h&0x7C00 != 0x7C00 || h&0x3FF == 0 {
		t.Errorf("NaN encodes as %#04x", h)
	}
	if !math.IsNaN(float64(F16ToF32(h))) {
		t.Error("NaN does not round trip")
	}
}

func TestBF16KnownValues(t *testing.T) {
	if F32ToBF16(1) != 0x3F80 {
		t.Error("bf16(1)")
	}
	if F32ToBF16(-2) != 0xC000 {
		t.Error("bf16(-2)")
	}
	if BF16ToF32(0x3F80) != 1 {
		t.Error("bf16→f32(1)")
	}
	nan := F32ToBF16(float32(math.NaN()))
	if !math.IsNaN(float64(BF16ToF32(nan))) {
		t.Error("bf16 NaN round trip")
	}
}

func TestBF16ErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		x := float32(rng.NormFloat64() * math.Pow(10, rng.Float64()*10-5))
		y := BF16ToF32(F32ToBF16(x))
		if math.Abs(float64(y-x)) > math.Ldexp(1, -8)*math.Abs(float64(x))+1e-30 {
			t.Fatalf("x=%g rt=%g", x, y)
		}
	}
}

func TestBF16PropertyMonotone(t *testing.T) {
	// quantization must preserve ordering of positive values far enough
	// apart
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) ||
			math.IsInf(float64(a), 0) || math.IsInf(float64(b), 0) {
			return true
		}
		if a > 0 && b > 2*a {
			return BF16ToF32(F32ToBF16(b)) >= BF16ToF32(F32ToBF16(a))
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func smoothMatrix(rng *rand.Rand, m, n int) *dense.Matrix {
	a := dense.New(m, n)
	for t := 0; t < 5; t++ {
		fu := 0.5 + rng.Float64()*2
		fv := 0.5 + rng.Float64()*2
		amp := math.Pow(0.6, float64(t))
		for j := 0; j < n; j++ {
			vj := complex(amp*math.Cos(fv*float64(j)/float64(n)*math.Pi),
				amp*math.Sin(fv*float64(j)/float64(n)*math.Pi))
			for i := 0; i < m; i++ {
				ui := complex(math.Cos(fu*float64(i)/float64(m)*math.Pi),
					math.Sin(fu*float64(i)/float64(m)*math.Pi))
				a.Set(i, j, a.At(i, j)+complex64(ui*vj))
			}
		}
	}
	return a
}

func testTLR(t testing.TB) *tlr.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	a := smoothMatrix(rng, 96, 80)
	tm, err := tlr.Compress(a, tlr.Options{NB: 16, Tol: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestQuantizeUniformFP16HalvesStorage(t *testing.T) {
	tm := testTLR(t)
	q, err := Quantize(tm, Uniform{F: FP16})
	if err != nil {
		t.Fatal(err)
	}
	if s := q.Savings(); math.Abs(s-0.5) > 0.02 {
		t.Errorf("FP16 savings %g, want ≈0.5", s)
	}
	// MVM error stays at half-precision level
	rng := rand.New(rand.NewSource(6))
	x := dense.Random(rng, 80, 1).Data
	y0 := make([]complex64, 96)
	tm.MulVec(x, y0)
	y1 := make([]complex64, 96)
	q.T.MulVec(x, y1)
	diff := make([]complex64, 96)
	for i := range diff {
		diff[i] = y1[i] - y0[i]
	}
	if rel := cfloat.Nrm2(diff) / cfloat.Nrm2(y0); rel > 5e-3 {
		t.Errorf("FP16 MVM error %g", rel)
	}
}

func TestQuantizeFP32IsExact(t *testing.T) {
	tm := testTLR(t)
	q, err := Quantize(tm, Uniform{F: FP32})
	if err != nil {
		t.Fatal(err)
	}
	if q.Savings() != 0 {
		t.Error("FP32 should save nothing")
	}
	if e := dense.RelError(q.T.Reconstruct(), tm.Reconstruct()); e > 0 {
		t.Errorf("FP32 quantization changed values: %g", e)
	}
}

func TestDiagonalBandPolicy(t *testing.T) {
	p := DiagonalBand{Band: 0.2, Demoted: FP16}
	if p.FormatFor(3, 3, 10, 10) != FP32 {
		t.Error("diagonal tile should stay FP32")
	}
	if p.FormatFor(0, 9, 10, 10) != FP16 {
		t.Error("far tile should demote")
	}
}

func TestAdaptivePolicyBeatsUniformAccuracy(t *testing.T) {
	// keeping near-diagonal tiles in FP32 must be at least as accurate as
	// demoting everything, while still saving memory
	tm := testTLR(t)
	uni, err := Quantize(tm, Uniform{F: BF16})
	if err != nil {
		t.Fatal(err)
	}
	ada, err := Quantize(tm, DiagonalBand{Band: 0.3, Demoted: BF16})
	if err != nil {
		t.Fatal(err)
	}
	ref := tm.Reconstruct()
	eUni := dense.RelError(uni.T.Reconstruct(), ref)
	eAda := dense.RelError(ada.T.Reconstruct(), ref)
	if eAda > eUni {
		t.Errorf("adaptive error %g worse than uniform %g", eAda, eUni)
	}
	if ada.Savings() <= 0 {
		t.Error("adaptive policy should still save memory")
	}
	if ada.Savings() >= uni.Savings() {
		t.Error("adaptive policy should save less than full demotion")
	}
}

func TestQuantizeNilPolicy(t *testing.T) {
	if _, err := Quantize(testTLR(t), nil); err == nil {
		t.Error("nil policy should fail")
	}
}

func TestFormatString(t *testing.T) {
	for f, want := range map[Format]string{FP32: "fp32", FP16: "fp16", BF16: "bf16", Format(9): "unknown"} {
		if f.String() != want {
			t.Errorf("Format(%d).String() = %q", f, f.String())
		}
	}
	if FP32.BytesPerReal() != 4 || FP16.BytesPerReal() != 2 {
		t.Error("BytesPerReal wrong")
	}
}

func BenchmarkQuantizeFP16(b *testing.B) {
	tm := testTLR(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Quantize(tm, Uniform{F: FP16}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestQuantizeSubnormalRangeValues(t *testing.T) {
	// seismic kernels live around 1e-5 — binary16's subnormal range.
	// Per-tile scaling must keep the relative error at the format's
	// normal-range level (~5e-4), not the subnormal collapse (~0.1).
	rng := rand.New(rand.NewSource(8))
	a := smoothMatrix(rng, 64, 48)
	for j := 0; j < a.Cols; j++ {
		col := a.Col(j)
		for i := range col {
			col[i] *= 1e-5
		}
	}
	tm, err := tlr.Compress(a, tlr.Options{NB: 16, Tol: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	q, err := Quantize(tm, Uniform{F: FP16})
	if err != nil {
		t.Fatal(err)
	}
	e := dense.RelError(q.T.Reconstruct(), tm.Reconstruct())
	if e > 2e-3 {
		t.Errorf("subnormal-range fp16 error %g — per-tile scaling broken", e)
	}
}

func TestSavingsAccountsScaleFactors(t *testing.T) {
	tm := testTLR(t)
	q, err := Quantize(tm, Uniform{F: FP16})
	if err != nil {
		t.Fatal(err)
	}
	// savings slightly under 50% because of the per-tile scale factors
	if s := q.Savings(); s > 0.5 || s < 0.48 {
		t.Errorf("FP16 savings %g, want just under 0.5", s)
	}
}
