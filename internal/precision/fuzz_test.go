package precision

import (
	"math"
	"testing"
)

// FuzzF16RoundTrip asserts the binary16 codec's contract over arbitrary
// float32 inputs: conversion never panics, the result is within the
// format's error bound (or correctly saturated/flushed), and re-encoding
// the decoded value is a fixed point.
func FuzzF16RoundTrip(f *testing.F) {
	for _, s := range []float32{0, 1, -1, 65504, 65520, 1e-8, 6.1e-5,
		float32(math.Inf(1)), float32(math.NaN()), -2.5e-7} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, x float32) {
		h := F32ToF16(x)
		y := F16ToF32(h)
		switch {
		case math.IsNaN(float64(x)):
			if !math.IsNaN(float64(y)) {
				t.Fatalf("NaN lost: %g", y)
			}
		case math.IsInf(float64(x), 0):
			if y != x {
				t.Fatalf("Inf lost: %g → %g", x, y)
			}
		case math.Abs(float64(x)) >= 65520:
			// overflow saturates to infinity of the same sign
			if !math.IsInf(float64(y), int(math.Copysign(1, float64(x)))) {
				t.Fatalf("overflow of %g gave %g", x, y)
			}
		case math.Abs(float64(x)) < 2.98e-8:
			if y != 0 && math.Abs(float64(y)) > 6e-8 {
				t.Fatalf("underflow of %g gave %g", x, y)
			}
		default:
			// general bound: half a ULP of binary16, i.e. ≤ 2^-11 relative
			// in the normal range, absolute 2^-25 near the subnormals
			err := math.Abs(float64(y) - float64(x))
			bound := math.Ldexp(1, -11)*math.Abs(float64(x)) + math.Ldexp(1, -25)
			if err > bound {
				t.Fatalf("x=%g y=%g err=%g bound=%g", x, y, err, bound)
			}
		}
		// idempotence: encode(decode(h)) == h for non-NaN
		if !math.IsNaN(float64(y)) {
			if h2 := F32ToF16(y); h2 != h {
				t.Fatalf("re-encode changed bits: %#04x → %#04x", h, h2)
			}
		}
	})
}

// FuzzBF16RoundTrip asserts the bfloat16 codec's contract likewise.
func FuzzBF16RoundTrip(f *testing.F) {
	for _, s := range []float32{0, 1, -3.3e38, 3.3e38, 1e-40,
		float32(math.Inf(-1)), float32(math.NaN())} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, x float32) {
		h := F32ToBF16(x)
		y := BF16ToF32(h)
		switch {
		case math.IsNaN(float64(x)):
			if !math.IsNaN(float64(y)) {
				t.Fatalf("NaN lost")
			}
		case math.IsInf(float64(x), 0):
			if y != x {
				t.Fatalf("Inf lost")
			}
		default:
			err := math.Abs(float64(y) - float64(x))
			bound := math.Ldexp(1, -8)*math.Abs(float64(x)) + 1e-40
			if err > bound && !math.IsInf(float64(y), 0) {
				t.Fatalf("x=%g y=%g err=%g", x, y, err)
			}
		}
	})
}
