// Package precision implements the mixed-precision extension of the TLR
// format ([23, 24] in the paper: "tile low-rank compression and
// mixed-precision computations"): storing the compressed U/V bases in
// reduced precision — IEEE binary16 or bfloat16 — while computing in FP32,
// which halves the memory footprint the CS-2 must hold per PE. An adaptive
// policy keeps the energetic near-diagonal tiles in FP32 and demotes only
// the weak off-diagonal tiles.
//
// The float16 codecs are implemented from scratch with round-to-nearest-
// even, since the pipeline is stdlib-only.
package precision

import (
	"fmt"
	"math"

	"repro/internal/dense"
	"repro/internal/tlr"
)

// Format selects a storage precision for tile bases.
type Format int

const (
	// FP32 keeps bases in full single precision (4 B per real).
	FP32 Format = iota
	// FP16 stores bases as IEEE 754 binary16 (2 B per real).
	FP16
	// BF16 stores bases as bfloat16 (2 B per real).
	BF16
)

func (f Format) String() string {
	switch f {
	case FP32:
		return "fp32"
	case FP16:
		return "fp16"
	case BF16:
		return "bf16"
	}
	return "unknown"
}

// BytesPerReal returns the storage cost of one real scalar.
func (f Format) BytesPerReal() int {
	if f == FP32 {
		return 4
	}
	return 2
}

// F32ToF16 converts a float32 to IEEE binary16 bits with round-to-
// nearest-even, handling subnormals, overflow to infinity, and NaN.
func F32ToF16(x float32) uint16 {
	bits := math.Float32bits(x)
	sign := uint16(bits>>16) & 0x8000
	exp := int32((bits>>23)&0xFF) - 127 + 15
	mant := bits & 0x7FFFFF
	if (bits>>23)&0xFF == 0xFF {
		if mant != 0 {
			return sign | 0x7E00 // NaN
		}
		return sign | 0x7C00 // ±Inf
	}
	if exp >= 0x1F {
		return sign | 0x7C00 // overflow
	}
	if exp <= 0 {
		if exp < -10 {
			return sign // underflow to zero
		}
		// subnormal half
		m := mant | 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		rem := m & ((uint32(1) << shift) - 1)
		res := m >> shift
		if rem > half || (rem == half && res&1 == 1) {
			res++
		}
		return sign | uint16(res)
	}
	// normal half with RNE on the dropped 13 bits
	res := mant >> 13
	rem := mant & 0x1FFF
	if rem > 0x1000 || (rem == 0x1000 && res&1 == 1) {
		res++
	}
	e := uint32(exp)
	if res == 0x400 {
		res = 0
		e++
		if e >= 0x1F {
			return sign | 0x7C00
		}
	}
	return sign | uint16(e<<10) | uint16(res)
}

// F16ToF32 expands IEEE binary16 bits to float32.
func F16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1F
	mant := uint32(h & 0x3FF)
	switch {
	case exp == 0x1F:
		if mant != 0 {
			return math.Float32frombits(sign | 0x7FC00000) // NaN
		}
		return math.Float32frombits(sign | 0x7F800000) // ±Inf
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign) // ±0
		}
		// subnormal: normalize
		for mant&0x400 == 0 {
			mant <<= 1
			exp--
		}
		mant &= 0x3FF
		exp++
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}

// F32ToBF16 converts a float32 to bfloat16 bits with round-to-nearest-even.
func F32ToBF16(x float32) uint16 {
	bits := math.Float32bits(x)
	if bits&0x7F800000 == 0x7F800000 && bits&0x7FFFFF != 0 {
		return uint16(bits>>16) | 0x0040 // quieten NaN
	}
	r := bits + 0x7FFF + ((bits >> 16) & 1)
	return uint16(r >> 16)
}

// BF16ToF32 expands bfloat16 bits to float32.
func BF16ToF32(h uint16) float32 {
	return math.Float32frombits(uint32(h) << 16)
}

// roundThrough quantizes a value through the format and back.
func roundThrough(f Format, x float32) float32 {
	switch f {
	case FP16:
		return F16ToF32(F32ToF16(x))
	case BF16:
		return BF16ToF32(F32ToBF16(x))
	default:
		return x
	}
}

// Policy decides the storage format of each tile.
type Policy interface {
	// FormatFor returns the format of tile (i, j) of an mt×nt grid.
	FormatFor(i, j, mt, nt int) Format
}

// Uniform stores every tile in the same format.
type Uniform struct{ F Format }

// FormatFor implements Policy.
func (u Uniform) FormatFor(_, _, _, _ int) Format { return u.F }

// DiagonalBand keeps tiles within Band normalized diagonal distance in
// FP32 and demotes the rest to Demoted — the adaptive policy of [23]:
// energetic near-diagonal tiles keep full precision.
type DiagonalBand struct {
	Band    float64
	Demoted Format
}

// FormatFor implements Policy.
func (p DiagonalBand) FormatFor(i, j, mt, nt int) Format {
	d := math.Abs(float64(i)/float64(mt) - float64(j)/float64(nt))
	if d <= p.Band {
		return FP32
	}
	return p.Demoted
}

// Quantized is a TLR matrix whose bases have been rounded through a
// reduced-precision storage format (compute stays FP32, as on hardware
// with FP16 storage paths).
type Quantized struct {
	// T is the quantized operator, usable anywhere a tlr.Matrix is.
	T *tlr.Matrix
	// StoredBytes is the footprint under the reduced-precision layout.
	StoredBytes int64
	// Formats records each tile's storage format (row-major).
	Formats []Format
}

// Quantize rounds every tile base of t through the policy's formats and
// returns the quantized operator with its storage accounting. The input
// matrix is not modified.
func Quantize(t *tlr.Matrix, p Policy) (*Quantized, error) {
	if p == nil {
		return nil, fmt.Errorf("precision: nil policy")
	}
	out := &tlr.Matrix{M: t.M, N: t.N, NB: t.NB, MT: t.MT, NT: t.NT,
		Tiles: make([]*tlr.Tile, len(t.Tiles))}
	q := &Quantized{T: out, Formats: make([]Format, len(t.Tiles))}
	for i := 0; i < t.MT; i++ {
		for j := 0; j < t.NT; j++ {
			src := t.Tile(i, j)
			f := p.FormatFor(i, j, t.MT, t.NT)
			q.Formats[i*t.NT+j] = f
			u := quantizeMatrix(src.U, f)
			v := quantizeMatrix(src.V, f)
			out.Tiles[i*t.NT+j] = &tlr.Tile{U: u, V: v}
			elems := int64(src.U.Rows*src.U.Cols + src.V.Rows*src.V.Cols)
			q.StoredBytes += 2 * elems * int64(f.BytesPerReal()) // Re+Im
			if f != FP32 {
				q.StoredBytes += 8 // per-tile U and V scale factors
			}
		}
	}
	return q, nil
}

// quantizeMatrix rounds a matrix through the reduced format using a
// per-tile power-of-two scale factor, as production mixed-precision TLR
// does: seismic kernel values sit around 1e-5 — inside binary16's
// subnormal range where relative precision collapses — so the values are
// scaled into the normal range before rounding and scaled back after
// (both steps exact in FP32 for power-of-two factors).
//
//lint:widen-ok power-of-two scaling is carried out exactly in float64
func quantizeMatrix(a *dense.Matrix, f Format) *dense.Matrix {
	out := dense.New(a.Rows, a.Cols)
	if f == FP32 {
		out.CopyFrom(a)
		return out
	}
	maxAbs := a.MaxAbs()
	scale, inv := 1.0, 1.0
	if maxAbs > 0 {
		e := math.Ilogb(maxAbs)
		scale = math.Ldexp(1, -e) // brings maxAbs into [1, 2)
		inv = math.Ldexp(1, e)
	}
	for j := 0; j < a.Cols; j++ {
		src := a.Col(j)
		dst := out.Col(j)
		for i, v := range src {
			re := roundThrough(f, float32(float64(real(v))*scale))
			im := roundThrough(f, float32(float64(imag(v))*scale))
			dst[i] = complex(float32(float64(re)*inv), float32(float64(im)*inv))
		}
	}
	return out
}

// Savings returns the storage reduction versus FP32.
func (q *Quantized) Savings() float64 {
	full := q.T.CompressedBytes()
	if full == 0 {
		return 0
	}
	return 1 - float64(q.StoredBytes)/float64(full)
}
