// Differential tests for reduced-precision storage: the quantized TLR
// operator against the dense reference with format-derived tolerances,
// for every format and policy. External test package: testkit imports
// precision.
package precision_test

import (
	"testing"

	"repro/internal/precision"
	"repro/internal/testkit"
	"repro/internal/tlr"
)

func compressed(t *testing.T) (*tlr.Matrix, int) {
	t.Helper()
	a := testkit.DecayMat(testkit.NewRNG(71), 48, 48, 0.6)
	tm, err := tlr.Compress(a, tlr.Options{NB: 12, Tol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	return tm, a.Cols
}

// TestFP32QuantizationIsExact: routing through the FP32 "format" must not
// move a single bit.
func TestFP32QuantizationIsExact(t *testing.T) {
	tm, n := compressed(t)
	q, err := precision.Quantize(tm, precision.Uniform{F: precision.FP32})
	if err != nil {
		t.Fatal(err)
	}
	x := testkit.Vec(testkit.NewRNG(72), n)
	want := make([]complex64, tm.M)
	got := make([]complex64, tm.M)
	tm.MulVec(x, want)
	q.T.MulVec(x, got)
	if d := testkit.MaxULPDist(got, want); d != 0 {
		t.Fatalf("FP32 quantization moved the result %d ULPs", d)
	}
}

// TestDifferentialFormats: each storage format's MVM must stay inside its
// eps-derived budget against the unquantized operator, and the budgets
// must order FP16 tighter than BF16 (more mantissa bits).
func TestDifferentialFormats(t *testing.T) {
	tm, n := compressed(t)
	rng := testkit.NewRNG(73)
	x := testkit.Vec(rng, n)
	want := make([]complex64, tm.M)
	tm.MulVec(x, want)
	errs := map[precision.Format]float64{}
	for _, f := range []precision.Format{precision.FP16, precision.BF16} {
		q, err := precision.Quantize(tm, precision.Uniform{F: f})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]complex64, tm.M)
		q.T.MulVec(x, got)
		e := testkit.RelErr(got, want)
		tol := testkit.MVMTolerance(n, 0, f)
		if e > tol {
			t.Errorf("%s: relErr %g > format budget %g", f, e, tol)
		}
		if q.StoredBytes >= tm.CompressedBytes() {
			t.Errorf("%s: stored %d B not below FP32 %d B", f, q.StoredBytes, tm.CompressedBytes())
		}
		errs[f] = e
	}
	if errs[precision.FP16] >= errs[precision.BF16] {
		t.Errorf("fp16 error %g should undercut bf16 %g on in-range data",
			errs[precision.FP16], errs[precision.BF16])
	}
}

// TestDifferentialDiagonalBandPolicy: the adaptive policy must land
// between uniform FP32 and uniform demotion in both storage and error.
func TestDifferentialDiagonalBandPolicy(t *testing.T) {
	tm, n := compressed(t)
	x := testkit.Vec(testkit.NewRNG(74), n)
	want := make([]complex64, tm.M)
	tm.MulVec(x, want)
	uni, err := precision.Quantize(tm, precision.Uniform{F: precision.BF16})
	if err != nil {
		t.Fatal(err)
	}
	band, err := precision.Quantize(tm, precision.DiagonalBand{Band: 0.3, Demoted: precision.BF16})
	if err != nil {
		t.Fatal(err)
	}
	gotUni := make([]complex64, tm.M)
	gotBand := make([]complex64, tm.M)
	uni.T.MulVec(x, gotUni)
	band.T.MulVec(x, gotBand)
	if testkit.RelErr(gotBand, want) > testkit.RelErr(gotUni, want)*1.5 {
		t.Errorf("band policy error %g much worse than uniform %g",
			testkit.RelErr(gotBand, want), testkit.RelErr(gotUni, want))
	}
	if band.StoredBytes <= uni.StoredBytes {
		t.Errorf("band policy (%d B) should store more than uniform demotion (%d B)",
			band.StoredBytes, uni.StoredBytes)
	}
	if band.StoredBytes >= tm.CompressedBytes() {
		t.Errorf("band policy (%d B) should store less than full FP32 (%d B)",
			band.StoredBytes, tm.CompressedBytes())
	}
}

// TestDifferentialOracleWithQuantization runs the full oracle with a
// BF16 leg: every implementation plus the quantized operator.
func TestDifferentialOracleWithQuantization(t *testing.T) {
	a := testkit.DecayMat(testkit.NewRNG(75), 40, 40, 0.55)
	o, err := testkit.New(a, testkit.Config{
		TLROpts: tlr.Options{NB: 10, Tol: 1e-3},
		Format:  precision.BF16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Check(testkit.NewRNG(76), 2); err != nil {
		t.Fatal(err)
	}
}

// TestQuantizedAdjointConsistency: quantization must preserve the exact
// forward/adjoint pairing (it is still one matrix applied two ways).
func TestQuantizedAdjointConsistency(t *testing.T) {
	tm, _ := compressed(t)
	q, err := precision.Quantize(tm, precision.Uniform{F: precision.FP16})
	if err != nil {
		t.Fatal(err)
	}
	op := qOperator{q.T}
	if gap := testkit.AdjointGap(op, testkit.NewRNG(77), 4); gap > 1e-4 {
		t.Errorf("quantized adjoint gap %g", gap)
	}
}

type qOperator struct{ t *tlr.Matrix }

func (o qOperator) Rows() int                     { return o.t.M }
func (o qOperator) Cols() int                     { return o.t.N }
func (o qOperator) Apply(x, y []complex64)        { o.t.MulVec(x, y) }
func (o qOperator) ApplyAdjoint(x, y []complex64) { o.t.MulVecConjTrans(x, y) }
