package cgls

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/dense"
	"repro/internal/lsqr"
)

type flakyOp struct {
	op     lsqr.Operator
	failAt int
	count  int
}

func (f *flakyOp) Rows() int { return f.op.Rows() }
func (f *flakyOp) Cols() int { return f.op.Cols() }
func (f *flakyOp) Apply(x, y []complex64) error {
	f.count++
	if f.count == f.failAt {
		return errors.New("injected product fault")
	}
	f.op.Apply(x, y)
	return nil
}
func (f *flakyOp) ApplyAdjoint(x, y []complex64) error {
	f.count++
	if f.count == f.failAt {
		return errors.New("injected product fault")
	}
	f.op.ApplyAdjoint(x, y)
	return nil
}

func randProblem(seed int64, m, n int) (lsqr.Operator, []complex64) {
	rng := rand.New(rand.NewSource(seed))
	a := dense.Random(rng, m, n)
	b := dense.Random(rng, m, 1).Data
	return &lsqr.MatOperator{
		M: m, N: n,
		Fwd: a.MulVec,
		Adj: a.MulVecConjTrans,
	}, b
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := &Checkpoint{
		Iter: 4,
		X:    []complex64{1 + 2i}, R: []complex64{3, 4i}, P: []complex64{5},
		Gamma: 0.25, Gamma0: 8,
		History: []float64{3, 2, 1},
	}
	got, err := DecodeCheckpoint(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Iter != 4 || got.Gamma != 0.25 || got.Gamma0 != 8 ||
		len(got.X) != 1 || got.X[0] != 1+2i ||
		len(got.R) != 2 || got.R[1] != 4i ||
		len(got.P) != 1 || got.P[0] != 5 ||
		len(got.History) != 3 || got.History[2] != 1 {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestDecodeCheckpointRejectsCorruption(t *testing.T) {
	data := (&Checkpoint{Iter: 1, X: []complex64{1}, R: []complex64{2}, P: []complex64{3}}).Encode()
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, err := DecodeCheckpoint(mut); err == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
	if _, err := DecodeCheckpoint(data[:5]); !errors.Is(err, ckpt.ErrCorrupt) {
		t.Errorf("truncated: err = %v, want ErrCorrupt", err)
	}
	// an LSQR snapshot must not decode as a CGLS one
	if _, err := DecodeCheckpoint((&Checkpoint{}).Encode()[:0]); err == nil {
		t.Error("empty input should fail")
	}
}

func TestResumeBitIdentical(t *testing.T) {
	op, b := randProblem(61, 18, 11)
	opts := Options{MaxIters: 12}

	full, err := Solve(op, b, opts)
	if err != nil {
		t.Fatal(err)
	}

	var snap []byte
	_, _, err = SolveFallible(lsqr.Fallible{Op: op}, b, opts, CheckpointConfig{
		Interval: 4,
		OnCheckpoint: func(c *Checkpoint) {
			if c.Iter == 4 {
				snap = c.Encode()
			}
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no checkpoint taken at iteration 4")
	}
	resume, err := DecodeCheckpoint(snap)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := SolveFallible(lsqr.Fallible{Op: op}, b, opts, CheckpointConfig{}, resume)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != full.Iters {
		t.Errorf("resumed iters %d != full %d", res.Iters, full.Iters)
	}
	for i := range full.X {
		if res.X[i] != full.X[i] {
			t.Fatalf("element %d differs: %v vs %v (must be bit-identical)", i, res.X[i], full.X[i])
		}
	}
	for i := range full.ResidualHistory {
		if res.ResidualHistory[i] != full.ResidualHistory[i] {
			t.Fatalf("history %d differs", i)
		}
	}
}

func TestFaultReturnsLatestCheckpoint(t *testing.T) {
	op, b := randProblem(62, 14, 9)
	opts := Options{MaxIters: 10}
	full, err := Solve(op, b, opts)
	if err != nil {
		t.Fatal(err)
	}

	// products: 1 init adjoint, then 2 per iteration → invocation 8 is
	// inside iteration 3 (0-based); checkpoints exist through iter 3.
	flaky := &flakyOp{op: op, failAt: 8}
	res, last, err := SolveFallible(flaky, b, opts, CheckpointConfig{Interval: 1}, nil)
	if err == nil || res != nil {
		t.Fatalf("injected fault should surface with no result (res=%v err=%v)", res, err)
	}
	if last == nil {
		t.Fatal("faulted solve should hand back the latest checkpoint")
	}
	res2, _, err := SolveFallible(flaky, b, opts, CheckpointConfig{}, last)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.X {
		if res2.X[i] != full.X[i] {
			t.Fatalf("post-fault element %d differs: %v vs %v", i, res2.X[i], full.X[i])
		}
	}
}

func TestResumeShapeMismatch(t *testing.T) {
	op, b := randProblem(63, 8, 6)
	bad := &Checkpoint{Iter: 1, X: make([]complex64, 2), R: make([]complex64, 8), P: make([]complex64, 6)}
	if _, _, err := SolveFallible(lsqr.Fallible{Op: op}, b, Options{MaxIters: 5}, CheckpointConfig{}, bad); err == nil {
		t.Error("shape-mismatched checkpoint should be rejected")
	}
}
