// Fault-tolerant CGLS, mirroring internal/lsqr: the iteration runs
// through a fallible operator, periodically snapshots its state, and a
// faulted solve resumes from the last checkpoint with a bitwise
// identical trajectory.
package cgls

import (
	"errors"
	"fmt"

	"repro/internal/cfloat"
	"repro/internal/ckpt"
	"repro/internal/lsqr"
)

const (
	ckptMagic   = "CGLSCKPT"
	ckptVersion = 1
)

// Checkpoint is the complete between-iterations CGLS state (s is
// recomputed from r at the top of each iteration, so it is not stored).
type Checkpoint struct {
	// Iter is the number of completed iterations.
	Iter int
	// X, R, P are the solution estimate, residual, and search direction.
	X, R, P []complex64
	// Gamma and Gamma0 are the current and initial ‖Aᴴr‖² recurrence
	// values.
	Gamma, Gamma0 float64
	// History is the residual norm after each completed iteration.
	History []float64
}

// Encode serializes the checkpoint (magic "CGLSCKPT", CRC-32 trailer).
func (c *Checkpoint) Encode() []byte {
	e := ckpt.NewEncoder(ckptMagic, ckptVersion)
	e.Int(int64(c.Iter))
	e.Complex64s(c.X)
	e.Complex64s(c.R)
	e.Complex64s(c.P)
	e.Float(c.Gamma)
	e.Float(c.Gamma0)
	e.Float64s(c.History)
	return e.Bytes()
}

// DecodeCheckpoint parses an encoded checkpoint, rejecting corrupted or
// truncated snapshots with an error wrapping ckpt.ErrCorrupt.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	d, err := ckpt.NewDecoder(ckptMagic, ckptVersion, data)
	if err != nil {
		return nil, err
	}
	c := &Checkpoint{}
	iter, err := d.Int()
	if err != nil {
		return nil, err
	}
	if iter < 0 {
		return nil, fmt.Errorf("%w: negative iteration count %d", ckpt.ErrCorrupt, iter)
	}
	c.Iter = int(iter)
	for _, dst := range []*[]complex64{&c.X, &c.R, &c.P} {
		if *dst, err = d.Complex64s(); err != nil {
			return nil, err
		}
	}
	if c.Gamma, err = d.Float(); err != nil {
		return nil, err
	}
	if c.Gamma0, err = d.Float(); err != nil {
		return nil, err
	}
	if c.History, err = d.Float64s(); err != nil {
		return nil, err
	}
	if err := d.Close(); err != nil {
		return nil, err
	}
	return c, nil
}

// CheckpointConfig controls periodic snapshotting inside SolveFallible.
type CheckpointConfig struct {
	// Interval snapshots every Interval completed iterations; 0 disables.
	Interval int
	// OnCheckpoint, when non-nil, observes each snapshot as it is taken.
	OnCheckpoint func(*Checkpoint)
}

// SolveFallible runs CGLS through a fallible operator, optionally
// resuming from a checkpoint. On an operator fault it returns the fault
// plus the most recent checkpoint (nil if none was taken) so the caller
// can restore capacity and resume.
func SolveFallible(a lsqr.FallibleOperator, b []complex64, opts Options, cfg CheckpointConfig, resume *Checkpoint) (*Result, *Checkpoint, error) {
	defer obsSolve.Start().End()
	m, n := a.Rows(), a.Cols()
	if len(b) != m {
		return nil, nil, errors.New("cgls: rhs length mismatch")
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 30
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-8
	}
	damp2 := complex(float32(opts.Damp*opts.Damp), 0)

	var (
		x, r, p       []complex64
		gamma, gamma0 float64
		start         int
		last          *Checkpoint
	)
	res := &Result{}
	s := make([]complex64, n)
	if resume != nil {
		if len(resume.X) != n || len(resume.R) != m || len(resume.P) != n {
			return nil, nil, fmt.Errorf("cgls: checkpoint shape (%d,%d,%d) does not match operator (%d,%d)",
				len(resume.X), len(resume.R), len(resume.P), m, n)
		}
		x = append([]complex64(nil), resume.X...)
		r = append([]complex64(nil), resume.R...)
		p = append([]complex64(nil), resume.P...)
		gamma, gamma0 = resume.Gamma, resume.Gamma0
		start = resume.Iter
		last = resume
		res.Iters = resume.Iter
		res.ResidualHistory = append([]float64(nil), resume.History...)
		if len(resume.History) > 0 {
			res.ResidualNorm = resume.History[len(resume.History)-1]
		}
		res.NormalResidual = sqrt(gamma)
	} else {
		x = make([]complex64, n)
		r = make([]complex64, m) // r = b − A x (x starts at 0)
		copy(r, b)
		if err := a.ApplyAdjoint(r, s); err != nil {
			return nil, nil, fmt.Errorf("cgls: initial adjoint product: %w", err)
		}
		p = make([]complex64, n)
		copy(p, s)
		gamma = real2(cfloat.Dotc(s, s))
		gamma0 = gamma
		if gamma0 == 0 {
			return &Result{X: x, Converged: true}, nil, nil
		}
	}
	res.X = x
	q := make([]complex64, m)
	for it := start; it < opts.MaxIters; it++ {
		iterSpan := obsIter.Start()
		if err := a.Apply(p, q); err != nil {
			return nil, last, fmt.Errorf("cgls: iteration %d forward product: %w", it, err)
		}
		den := real2(cfloat.Dotc(q, q))
		if opts.Damp > 0 {
			den += float64(real(damp2)) * real2(cfloat.Dotc(p, p))
		}
		if den == 0 {
			iterSpan.End()
			break
		}
		alpha := complex(float32(gamma/den), 0)
		cfloat.Axpy(alpha, p, x)
		cfloat.Axpy(-alpha, q, r)
		if err := a.ApplyAdjoint(r, s); err != nil {
			return nil, last, fmt.Errorf("cgls: iteration %d adjoint product: %w", it, err)
		}
		if opts.Damp > 0 {
			for i := range s {
				s[i] -= damp2 * x[i]
			}
		}
		gammaNew := real2(cfloat.Dotc(s, s))
		res.Iters = it + 1
		res.ResidualNorm = cfloat.Nrm2(r)
		res.NormalResidual = sqrt(gammaNew)
		res.ResidualHistory = append(res.ResidualHistory, res.ResidualNorm)
		obsIters.Add(1)
		if d := iterSpan.End(); d > 0 {
			res.IterTimes = append(res.IterTimes, d)
		}
		if gammaNew <= opts.Tol*opts.Tol*gamma0 {
			res.Converged = true
			break
		}
		beta := complex(float32(gammaNew/gamma), 0)
		for i := range p {
			p[i] = s[i] + beta*p[i]
		}
		gamma = gammaNew

		if cfg.Interval > 0 && (it+1)%cfg.Interval == 0 {
			last = &Checkpoint{
				Iter:  it + 1,
				X:     append([]complex64(nil), x...),
				R:     append([]complex64(nil), r...),
				P:     append([]complex64(nil), p...),
				Gamma: gamma, Gamma0: gamma0,
				History: append([]float64(nil), res.ResidualHistory...),
			}
			if cfg.OnCheckpoint != nil {
				cfg.OnCheckpoint(last)
			}
		}
	}
	return res, last, nil
}
