// CG on the normal equations with a fused AᴴA pass: where standard CGLS
// applies A and Aᴴ separately each iteration (two sweeps over the TLR
// factors), this variant touches the operator once per iteration through
// lsqr.NormalOperator — for the TLR-backed MDC operator the fused
// tlr.Matrix.MulVecNormal streams every stacked U panel a single time.
// The trade is the classic CGNR one: the iteration tracks the normal
// residual Aᴴ(b−Ax) instead of the plain residual b−Ax, squaring the
// condition number seen by the recurrence, so it is offered as a solver
// ablation next to Solve, not as a replacement.
package cgls

import (
	"errors"

	"repro/internal/cfloat"
	"repro/internal/lsqr"
	"repro/internal/obs"
)

var (
	obsNormalSolve = obs.NewTimer("cgls.normal.solve")
	obsNormalIter  = obs.NewTimer("cgls.normal.iter")
	obsNormalIters = obs.NewCounter("cgls.normal.iters")
)

// SolveNormal runs CG directly on (AᴴA + damp²I) x = Aᴴb. When a
// implements lsqr.NormalOperator its fused ApplyNormal carries the whole
// per-iteration operator work; otherwise the pass is the explicit
// adjoint∘forward composition. In exact arithmetic the iterates coincide
// with Solve's; in float32 they drift apart at roughly the square of the
// condition number.
//
// Because the plain residual b − Ax is never formed, Result.ResidualNorm
// and Result.ResidualHistory report the normal residual ‖Aᴴ(b−Ax)‖ (the
// quantity the stopping rule tests), and Result.NormalResidual equals
// ResidualNorm.
func SolveNormal(a lsqr.Operator, b []complex64, opts Options) (*Result, error) {
	defer obsNormalSolve.Start().End()
	m, n := a.Rows(), a.Cols()
	if len(b) != m {
		return nil, errors.New("cgls: rhs length mismatch")
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 30
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-8
	}
	damp2 := complex(float32(opts.Damp*opts.Damp), 0)

	normal, fused := a.(lsqr.NormalOperator)
	var q []complex64 // forward-product scratch, fallback path only
	if !fused {
		q = make([]complex64, m)
	}
	applyNormal := func(p, w []complex64) {
		if fused {
			normal.ApplyNormal(p, w)
		} else {
			a.Apply(p, q)
			a.ApplyAdjoint(q, w)
		}
		if opts.Damp > 0 {
			for i := range w {
				w[i] += damp2 * p[i]
			}
		}
	}

	res := &Result{X: make([]complex64, n)}
	x := res.X
	rn := make([]complex64, n) // normal residual Aᴴb − (AᴴA+damp²I)x
	a.ApplyAdjoint(b, rn)
	gamma := real2(cfloat.Dotc(rn, rn))
	gamma0 := gamma
	if gamma0 == 0 {
		res.Converged = true
		return res, nil
	}
	p := append([]complex64(nil), rn...)
	w := make([]complex64, n)
	for it := 0; it < opts.MaxIters; it++ {
		iterSpan := obsNormalIter.Start()
		applyNormal(p, w)
		den := real2(cfloat.Dotc(p, w))
		if den <= 0 {
			// Lost positive definiteness to rounding: stop at the current
			// iterate rather than divide by a junk curvature.
			iterSpan.End()
			break
		}
		alpha := complex(float32(gamma/den), 0)
		cfloat.Axpy(alpha, p, x)
		cfloat.Axpy(-alpha, w, rn)
		gammaNew := real2(cfloat.Dotc(rn, rn))
		res.Iters = it + 1
		res.ResidualNorm = sqrt(gammaNew)
		res.NormalResidual = res.ResidualNorm
		res.ResidualHistory = append(res.ResidualHistory, res.ResidualNorm)
		obsNormalIters.Add(1)
		if d := iterSpan.End(); d > 0 {
			res.IterTimes = append(res.IterTimes, d)
		}
		if gammaNew <= opts.Tol*opts.Tol*gamma0 {
			res.Converged = true
			break
		}
		beta := complex(float32(gammaNew/gamma), 0)
		for i := range p {
			p[i] = rn[i] + beta*p[i]
		}
		gamma = gammaNew
	}
	return res, nil
}
