package cgls

import (
	"testing"

	"repro/internal/dense"
	"repro/internal/lsqr"
	"repro/internal/mdc"
	"repro/internal/testkit"
	"repro/internal/tlr"
)

func TestSolveNormalConsistentSystem(t *testing.T) {
	rng := testkit.NewRNG(11)
	m, n := 40, 12
	a := dense.Random(rng, m, n)
	xTrue := dense.Random(rng, n, 1).Data
	b := make([]complex64, m)
	a.MulVec(xTrue, b)
	res, err := SolveNormal(denseOp(a), b, Options{MaxIters: 100, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if e := testkit.RelErr(res.X, xTrue); e > 1e-3 {
		t.Errorf("solve error %g after %d iters", e, res.Iters)
	}
	if !res.Converged {
		t.Error("did not converge on a consistent system")
	}
}

func TestSolveNormalAgreesWithCGLS(t *testing.T) {
	// CG on the normal equations and CGLS generate the same Krylov
	// iterates in exact arithmetic; on a well-conditioned system the
	// float32 trajectories stay close.
	rng := testkit.NewRNG(12)
	n := 30
	a := dense.Random(rng, n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+6)
	}
	b := dense.Random(rng, n, 1).Data
	for _, damp := range []float64{0, 0.3} {
		rn, err := SolveNormal(denseOp(a), b, Options{MaxIters: 12, Tol: 1e-16, Damp: damp})
		if err != nil {
			t.Fatal(err)
		}
		rc, err := Solve(denseOp(a), b, Options{MaxIters: 12, Tol: 1e-16, Damp: damp})
		if err != nil {
			t.Fatal(err)
		}
		if e := testkit.RelErr(rn.X, rc.X); e > 1e-2 {
			t.Errorf("damp %g: SolveNormal vs Solve solutions differ by %g", damp, e)
		}
	}
}

func TestSolveNormalZeroRHS(t *testing.T) {
	rng := testkit.NewRNG(13)
	a := dense.Random(rng, 8, 5)
	res, err := SolveNormal(denseOp(a), make([]complex64, 8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iters != 0 {
		t.Errorf("zero rhs: converged=%v iters=%d, want immediate x=0", res.Converged, res.Iters)
	}
	for i, v := range res.X {
		if v != 0 {
			t.Fatalf("zero rhs: x[%d] = %v", i, v)
		}
	}
}

func TestSolveNormalRHSLengthMismatch(t *testing.T) {
	rng := testkit.NewRNG(14)
	a := dense.Random(rng, 8, 5)
	if _, err := SolveNormal(denseOp(a), make([]complex64, 7), Options{}); err == nil {
		t.Fatal("short rhs accepted")
	}
}

// TestSolveNormalFusedTLROperator drives the whole fused stack: the MDC
// frequency operator over a TLR kernel implements lsqr.NormalOperator,
// so each SolveNormal iteration is one tlr.Matrix.MulVecNormal pass. The
// solution must match standard CGLS on the same operator.
func TestSolveNormalFusedTLROperator(t *testing.T) {
	rng := testkit.NewRNG(15)
	n := 36
	a := testkit.DecayMat(rng, n, n, 0.5)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+4)
	}
	tm, err := tlr.Compress(a, tlr.Options{NB: 12, Tol: 1e-6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	op := &mdc.FreqOperator{K: &mdc.TLRKernel{Mats: []*tlr.Matrix{tm}}, Workers: 1}
	if _, ok := interface{}(op).(lsqr.NormalOperator); !ok {
		t.Fatal("FreqOperator over a TLR kernel must implement lsqr.NormalOperator")
	}
	b := dense.Random(rng, n, 1).Data
	rn, err := SolveNormal(op, b, Options{MaxIters: 15, Tol: 1e-16})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Solve(op, b, Options{MaxIters: 15, Tol: 1e-16})
	if err != nil {
		t.Fatal(err)
	}
	if e := testkit.RelErr(rn.X, rc.X); e > 1e-2 {
		t.Errorf("fused SolveNormal vs CGLS solutions differ by %g", e)
	}
}
