package cgls

import (
	"bytes"
	"testing"
)

// FuzzCheckpointDecode mirrors the lsqr fuzz target for the CGLS
// snapshot schema: arbitrary bytes must decode to an error or to a
// state that round-trips stably — never a panic, never a silent
// half-resume.
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("CGLSCKPT"))
	good := (&Checkpoint{
		Iter: 2,
		X:    []complex64{1, 2i}, R: []complex64{3}, P: []complex64{4, 5},
		Gamma: 0.5, Gamma0: 2,
		History: []float64{1, 0.1},
	}).Encode()
	f.Add(good)
	f.Add(good[:len(good)-5])
	mut := append([]byte(nil), good...)
	mut[0] ^= 0x01
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCheckpoint(data)
		if err != nil {
			if c != nil {
				t.Fatal("error with non-nil checkpoint")
			}
			return
		}
		again, err := DecodeCheckpoint(c.Encode())
		if err != nil {
			t.Fatalf("re-encode of a valid snapshot failed to decode: %v", err)
		}
		if again.Iter != c.Iter || len(again.X) != len(c.X) || len(again.History) != len(c.History) {
			t.Fatal("re-encoded snapshot lost state")
		}
		if !bytes.Equal(c.Encode(), again.Encode()) {
			t.Fatal("encoding is not stable across a round trip")
		}
	})
}
