package cgls

import (
	"testing"

	"repro/internal/cfloat"
	"repro/internal/dense"
	"repro/internal/lsqr"
	"repro/internal/testkit"
)

// TestSolveEdgeCases drives CGLS through the same boundary inputs as the
// LSQR edge table, so the two solvers keep identical edge semantics.
func TestSolveEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		setup func() (lsqr.Operator, []complex64)
		opts  Options
		check func(t *testing.T, res *Result)
	}{
		{
			name: "1x1-real",
			setup: func() (lsqr.Operator, []complex64) {
				a := dense.New(1, 1)
				a.Set(0, 0, 3)
				return denseOp(a), []complex64{6}
			},
			opts: Options{MaxIters: 10},
			check: func(t *testing.T, res *Result) {
				if e := testkit.RelErr(res.X, []complex64{2}); e > 1e-6 {
					t.Errorf("x = %v, want 2 (relErr %g)", res.X, e)
				}
			},
		},
		{
			name: "1x1-complex",
			setup: func() (lsqr.Operator, []complex64) {
				a := dense.New(1, 1)
				a.Set(0, 0, 1+1i)
				return denseOp(a), []complex64{2i}
			},
			opts: Options{MaxIters: 10},
			check: func(t *testing.T, res *Result) {
				if e := testkit.RelErr(res.X, []complex64{1 + 1i}); e > 1e-6 {
					t.Errorf("x = %v, want 1+i (relErr %g)", res.X, e)
				}
			},
		},
		{
			name: "zero-rhs-converges-to-zero",
			setup: func() (lsqr.Operator, []complex64) {
				return denseOp(dense.Eye(4)), make([]complex64, 4)
			},
			check: func(t *testing.T, res *Result) {
				if !res.Converged || cfloat.Nrm2(res.X) != 0 {
					t.Errorf("zero RHS: converged=%v x=%v", res.Converged, res.X)
				}
			},
		},
		{
			name: "zero-maxiters-uses-default",
			setup: func() (lsqr.Operator, []complex64) {
				a := dense.Random(testkit.NewRNG(91), 12, 12)
				return denseOp(a), testkit.Vec(testkit.NewRNG(92), 12)
			},
			opts: Options{Tol: 1e-16}, // never satisfied
			check: func(t *testing.T, res *Result) {
				if res.Iters != 30 {
					t.Errorf("MaxIters=0 ran %d iters, default is 30", res.Iters)
				}
			},
		},
		{
			name: "already-converged-identity",
			setup: func() (lsqr.Operator, []complex64) {
				return denseOp(dense.Eye(6)), testkit.Vec(testkit.NewRNG(93), 6)
			},
			opts: Options{MaxIters: 50},
			check: func(t *testing.T, res *Result) {
				if !res.Converged {
					t.Error("identity system did not report convergence")
				}
				if res.Iters > 2 {
					t.Errorf("identity system took %d iters", res.Iters)
				}
			},
		},
		{
			name: "tall-single-column",
			setup: func() (lsqr.Operator, []complex64) {
				a := dense.Random(testkit.NewRNG(94), 9, 1)
				b := make([]complex64, 9)
				a.MulVec([]complex64{2 - 1i}, b)
				return denseOp(a), b
			},
			opts: Options{MaxIters: 20},
			check: func(t *testing.T, res *Result) {
				if e := testkit.RelErr(res.X, []complex64{2 - 1i}); e > 1e-4 {
					t.Errorf("single-column solve error %g", e)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			op, b := tc.setup()
			res, err := Solve(op, b, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if tc.check != nil {
				tc.check(t, res)
			}
		})
	}
}
