package cgls

import (
	"math"
	"testing"

	"repro/internal/cfloat"
	"repro/internal/dense"
	"repro/internal/lsqr"
	"repro/internal/testkit"
)

func denseOp(a *dense.Matrix) *lsqr.MatOperator {
	return &lsqr.MatOperator{
		M:   a.Rows,
		N:   a.Cols,
		Fwd: func(x, y []complex64) { a.MulVec(x, y) },
		Adj: func(x, y []complex64) { a.MulVecConjTrans(x, y) },
	}
}

func TestSolveConsistentSystem(t *testing.T) {
	rng := testkit.NewRNG(1)
	m, n := 40, 12
	a := dense.Random(rng, m, n)
	xTrue := dense.Random(rng, n, 1).Data
	b := make([]complex64, m)
	a.MulVec(xTrue, b)
	res, err := Solve(denseOp(a), b, Options{MaxIters: 100, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if e := testkit.RelErr(res.X, xTrue); e > 1e-3 {
		t.Errorf("solve error %g after %d iters", e, res.Iters)
	}
	if !res.Converged {
		t.Error("did not converge on a consistent system")
	}
}

func TestAgreesWithLSQR(t *testing.T) {
	// CGLS and LSQR build the same Krylov iterates: after the same number
	// of iterations on a well-conditioned system the solutions must agree
	rng := testkit.NewRNG(2)
	m, n := 30, 30
	a := dense.Random(rng, m, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+6)
	}
	b := dense.Random(rng, m, 1).Data
	iters := 12
	rc, err := Solve(denseOp(a), b, Options{MaxIters: iters, Tol: 1e-16})
	if err != nil {
		t.Fatal(err)
	}
	rl, err := lsqr.Solve(denseOp(a), b, lsqr.Options{MaxIters: iters, ATol: 1e-16, BTol: 1e-16})
	if err != nil {
		t.Fatal(err)
	}
	if e := testkit.RelErr(rc.X, rl.X); e > 1e-2 {
		t.Errorf("CGLS and LSQR diverge: %g", e)
	}
}

func TestResidualMonotone(t *testing.T) {
	rng := testkit.NewRNG(3)
	a := dense.Random(rng, 50, 20)
	b := dense.Random(rng, 50, 1).Data
	res, err := Solve(denseOp(a), b, Options{MaxIters: 25})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.ResidualHistory); i++ {
		if res.ResidualHistory[i] > res.ResidualHistory[i-1]*(1+1e-5) {
			t.Fatalf("residual increased at iter %d", i)
		}
	}
}

func TestDampingShrinksSolution(t *testing.T) {
	rng := testkit.NewRNG(4)
	a := dense.Random(rng, 25, 25)
	b := dense.Random(rng, 25, 1).Data
	r0, err := Solve(denseOp(a), b, Options{MaxIters: 50})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Solve(denseOp(a), b, Options{MaxIters: 50, Damp: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cfloat.Nrm2(rd.X) >= cfloat.Nrm2(r0.X) {
		t.Error("damping did not shrink the solution")
	}
}

func TestZeroRHS(t *testing.T) {
	a := dense.Eye(5)
	res, err := Solve(denseOp(a), make([]complex64, 5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || cfloat.Nrm2(res.X) != 0 {
		t.Error("zero rhs should converge to zero immediately")
	}
}

func TestRHSMismatch(t *testing.T) {
	a := dense.Eye(5)
	if _, err := Solve(denseOp(a), make([]complex64, 3), Options{}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestNormalResidualReported(t *testing.T) {
	rng := testkit.NewRNG(5)
	a := dense.Random(rng, 20, 8)
	b := dense.Random(rng, 20, 1).Data
	res, err := Solve(denseOp(a), b, Options{MaxIters: 60, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// at the LS solution the normal-equations residual is near zero
	if math.IsNaN(res.NormalResidual) || res.NormalResidual > 1e-3*cfloat.Nrm2(b) {
		t.Errorf("normal residual %g", res.NormalResidual)
	}
}

func BenchmarkSolve30Iters(b *testing.B) {
	rng := testkit.NewRNG(1)
	a := dense.Random(rng, 128, 128)
	rhs := dense.Random(rng, 128, 1).Data
	op := denseOp(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Solve(op, rhs, Options{MaxIters: 30, Tol: 1e-16})
	}
}
