// Package cgls implements the Conjugate Gradient Least Squares method as
// an alternative to LSQR for the MDD inversion. CGLS applies CG to the
// normal equations AᴴA x = Aᴴb without forming AᴴA; in exact arithmetic
// it generates the same Krylov iterates as LSQR but with slightly cheaper
// recurrences and slightly worse numerical behaviour on ill-conditioned
// systems — a useful solver ablation for the ill-posed MDD problem.
package cgls

import (
	"math"
	"time"

	"repro/internal/lsqr"
	"repro/internal/obs"
)

// Solver metrics, mirroring the lsqr ones so the two MDD solvers report
// through the same vocabulary.
var (
	obsSolve = obs.NewTimer("cgls.solve")
	obsIter  = obs.NewTimer("cgls.iter")
	obsIters = obs.NewCounter("cgls.iters")
)

// Options mirrors the LSQR options where applicable.
type Options struct {
	// MaxIters bounds the iteration count (default 30).
	MaxIters int
	// Tol stops when ‖Aᴴr‖ / ‖Aᴴb‖ falls below it (default 1e-8).
	Tol float64
	// Damp adds Tikhonov damping (solves (AᴴA + damp²I) x = Aᴴ b).
	Damp float64
}

// Result reports the solve outcome.
type Result struct {
	X               []complex64
	Iters           int
	ResidualNorm    float64
	NormalResidual  float64
	ResidualHistory []float64
	// IterTimes holds the wall time of each iteration, aligned with
	// ResidualHistory; collected only while obs.Enabled().
	IterTimes []time.Duration
	Converged bool
}

// Solve runs CGLS on the operator (reusing the lsqr.Operator interface).
// It is the infallible front door over SolveFallible: same iteration,
// no checkpointing, operator faults impossible by construction.
func Solve(a lsqr.Operator, b []complex64, opts Options) (*Result, error) {
	res, _, err := SolveFallible(lsqr.Fallible{Op: a}, b, opts, CheckpointConfig{}, nil)
	return res, err
}

func real2(c complex64) float64 { return float64(real(c)) }

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
