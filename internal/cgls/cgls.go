// Package cgls implements the Conjugate Gradient Least Squares method as
// an alternative to LSQR for the MDD inversion. CGLS applies CG to the
// normal equations AᴴA x = Aᴴb without forming AᴴA; in exact arithmetic
// it generates the same Krylov iterates as LSQR but with slightly cheaper
// recurrences and slightly worse numerical behaviour on ill-conditioned
// systems — a useful solver ablation for the ill-posed MDD problem.
package cgls

import (
	"errors"
	"math"
	"time"

	"repro/internal/cfloat"
	"repro/internal/lsqr"
	"repro/internal/obs"
)

// Solver metrics, mirroring the lsqr ones so the two MDD solvers report
// through the same vocabulary.
var (
	obsSolve = obs.NewTimer("cgls.solve")
	obsIter  = obs.NewTimer("cgls.iter")
	obsIters = obs.NewCounter("cgls.iters")
)

// Options mirrors the LSQR options where applicable.
type Options struct {
	// MaxIters bounds the iteration count (default 30).
	MaxIters int
	// Tol stops when ‖Aᴴr‖ / ‖Aᴴb‖ falls below it (default 1e-8).
	Tol float64
	// Damp adds Tikhonov damping (solves (AᴴA + damp²I) x = Aᴴ b).
	Damp float64
}

// Result reports the solve outcome.
type Result struct {
	X               []complex64
	Iters           int
	ResidualNorm    float64
	NormalResidual  float64
	ResidualHistory []float64
	// IterTimes holds the wall time of each iteration, aligned with
	// ResidualHistory; collected only while obs.Enabled().
	IterTimes []time.Duration
	Converged bool
}

// Solve runs CGLS on the operator (reusing the lsqr.Operator interface).
func Solve(a lsqr.Operator, b []complex64, opts Options) (*Result, error) {
	defer obsSolve.Start().End()
	m, n := a.Rows(), a.Cols()
	if len(b) != m {
		return nil, errors.New("cgls: rhs length mismatch")
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 30
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-8
	}
	damp2 := complex(float32(opts.Damp*opts.Damp), 0)

	x := make([]complex64, n)
	r := make([]complex64, m) // r = b − A x (x starts at 0)
	copy(r, b)
	s := make([]complex64, n) // s = Aᴴ r − damp²·x
	a.ApplyAdjoint(r, s)
	p := make([]complex64, n)
	copy(p, s)
	gamma := real2(cfloat.Dotc(s, s))
	gamma0 := gamma
	if gamma0 == 0 {
		return &Result{X: x, Converged: true}, nil
	}
	q := make([]complex64, m)
	res := &Result{X: x}
	for it := 0; it < opts.MaxIters; it++ {
		iterSpan := obsIter.Start()
		a.Apply(p, q)
		den := real2(cfloat.Dotc(q, q))
		if opts.Damp > 0 {
			den += float64(real(damp2)) * real2(cfloat.Dotc(p, p))
		}
		if den == 0 {
			iterSpan.End()
			break
		}
		alpha := complex(float32(gamma/den), 0)
		cfloat.Axpy(alpha, p, x)
		cfloat.Axpy(-alpha, q, r)
		a.ApplyAdjoint(r, s)
		if opts.Damp > 0 {
			for i := range s {
				s[i] -= damp2 * x[i]
			}
		}
		gammaNew := real2(cfloat.Dotc(s, s))
		res.Iters = it + 1
		res.ResidualNorm = cfloat.Nrm2(r)
		res.NormalResidual = sqrt(gammaNew)
		res.ResidualHistory = append(res.ResidualHistory, res.ResidualNorm)
		obsIters.Add(1)
		if d := iterSpan.End(); d > 0 {
			res.IterTimes = append(res.IterTimes, d)
		}
		if gammaNew <= opts.Tol*opts.Tol*gamma0 {
			res.Converged = true
			break
		}
		beta := complex(float32(gammaNew/gamma), 0)
		for i := range p {
			p[i] = s[i] + beta*p[i]
		}
		gamma = gammaNew
	}
	return res, nil
}

func real2(c complex64) float64 { return float64(real(c)) }

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
