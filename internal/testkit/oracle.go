package testkit

import (
	"bytes"
	"fmt"
	"math/rand"

	"repro/internal/cs2"
	"repro/internal/dense"
	"repro/internal/mdc"
	"repro/internal/opstore"
	"repro/internal/precision"
	"repro/internal/tlr"
	"repro/internal/tlrio"
	"repro/internal/wsesim"
)

// Impl is one implementation under differential test: a way of computing
// y = A x (and optionally y = Aᴴ x) that must agree with the dense
// reference within Tol and with the sequential TLR reference within
// PairTol (0 skips the pairwise check).
type Impl struct {
	Name    string
	Apply   func(x, y []complex64) error
	Adjoint func(x, y []complex64) // nil when the path has no adjoint
	Tol     float64
	PairTol float64
}

// Config parameterizes an oracle case.
type Config struct {
	// TLROpts drives the compression every compressed implementation
	// shares (NB and Tol are the paper's nb and acc).
	TLROpts tlr.Options
	// Format, when not FP32, adds a reduced-precision-storage
	// implementation with a format-derived tolerance.
	Format precision.Format
	// StackWidth is the wsesim chunk height (0 = NB).
	StackWidth int
	// Workers bounds parallel implementations (0 = GOMAXPROCS).
	Workers int
}

// Oracle runs one (matrix, tolerance, precision) case through every
// implementation of the TLR-MVM stack and asserts agreement plus
// hardware-model invariants. Implementations covered: dense MVM (the
// reference), sequential/parallel/batched TLR-MVM, the MDC frequency
// operator over both dense and TLR kernels, the wsesim functional PE
// simulation, and (optionally) the reduced-precision quantized operator.
type Oracle struct {
	A     *dense.Matrix
	T     *tlr.Matrix
	Cfg   Config
	Impls []Impl

	machine *wsesim.Machine
	// perMulFMACs / perMulBytes are the §6.6 absolute per-product costs
	// predicted from the chunk plan; the executed meters must match.
	perMulFMACs int64
	perMulBytes int64
	wsesimMuls  int64

	// oocT is the same operator round-tripped through the paged on-disk
	// format and served out-of-core through a byte-budgeted tile cache;
	// qT/oocQ are the reduced-precision twin pair when Cfg.Format asks
	// for one. The invariants hold each store-backed product to 0 ULPs
	// of its in-memory twin.
	oocT *tlr.Matrix
	qT   *tlr.Matrix
	oocQ *tlr.Matrix
}

// New compresses a with cfg.TLROpts and assembles the implementation set.
func New(a *dense.Matrix, cfg Config) (*Oracle, error) {
	t, err := tlr.Compress(a, cfg.TLROpts)
	if err != nil {
		return nil, fmt.Errorf("testkit: compressing oracle matrix: %w", err)
	}
	o := &Oracle{A: a, T: t, Cfg: cfg}
	n := a.Cols
	acc := cfg.TLROpts.Tol
	compTol := MVMTolerance(n, acc, precision.FP32)
	pairTol := ExecTolerance(n)
	workers := cfg.Workers
	if workers == 0 {
		workers = 4
	}

	o.Impls = append(o.Impls, Impl{
		Name: "tlr",
		Apply: func(x, y []complex64) error {
			t.MulVec(x, y)
			return nil
		},
		Adjoint: t.MulVecConjTrans,
		Tol:     compTol,
	})
	o.Impls = append(o.Impls, Impl{
		Name: "tlr-parallel",
		Apply: func(x, y []complex64) error {
			t.MulVecParallel(x, y, workers)
			return nil
		},
		Adjoint: func(x, y []complex64) { t.MulVecConjTransParallel(x, y, workers) },
		Tol:     compTol,
		PairTol: pairTol,
	})
	o.Impls = append(o.Impls, Impl{
		Name: "tlr-batched",
		Apply: func(x, y []complex64) error {
			return t.MulVecBatched(x, y, workers)
		},
		Tol:     compTol,
		PairTol: pairTol,
	})
	// The stacked split-plane (SoA) paths: same math as the AoS tile
	// paths, float32 accumulation instead of the complex Gemv's float64 —
	// ExecTolerance absorbs the difference for the paper-scale ranks.
	o.Impls = append(o.Impls, Impl{
		Name: "tlr-soa",
		Apply: func(x, y []complex64) error {
			t.MulVecSoA(x, y)
			return nil
		},
		Adjoint: t.MulVecConjTransSoA,
		Tol:     compTol,
		PairTol: pairTol,
	})
	o.Impls = append(o.Impls, Impl{
		Name: "tlr-soa-parallel",
		Apply: func(x, y []complex64) error {
			t.MulVecSoAParallel(x, y, workers)
			return nil
		},
		Adjoint: func(x, y []complex64) { t.MulVecConjTransSoAParallel(x, y, workers) },
		Tol:     compTol,
		PairTol: pairTol,
	})
	// The AoS batched formulation kept as the oracle reference for the
	// stacked SoA MulVecBatched.
	o.Impls = append(o.Impls, Impl{
		Name: "tlr-batched-aos",
		Apply: func(x, y []complex64) error {
			return t.MulVecBatchedAoS(x, y, workers)
		},
		Tol:     compTol,
		PairTol: pairTol,
	})

	// MDC operator with a single-frequency dense kernel: must reproduce
	// the dense reference up to execution-order rounding.
	dk, err := mdc.NewDenseKernel([]*dense.Matrix{a})
	if err != nil {
		return nil, err
	}
	denseOp := &mdc.FreqOperator{K: dk, Workers: workers}
	o.Impls = append(o.Impls, Impl{
		Name: "mdc-dense",
		Apply: func(x, y []complex64) error {
			denseOp.Apply(x, y)
			return nil
		},
		Adjoint: denseOp.ApplyAdjoint,
		Tol:     pairTol,
	})
	// The fallible path the fault-tolerant stack uses: same math, error
	// propagation instead of panics.
	o.Impls = append(o.Impls, Impl{
		Name:  "mdc-checked",
		Apply: denseOp.ApplyChecked,
		Adjoint: func(x, y []complex64) {
			if err := denseOp.ApplyAdjointChecked(x, y); err != nil {
				panic(err)
			}
		},
		Tol: pairTol,
	})
	// The per-frequency kernel primitives, exercised directly rather than
	// through FreqOperator, so the kernel layer itself stays under
	// differential coverage.
	o.Impls = append(o.Impls, Impl{
		Name: "mdc-kernel-dense",
		Apply: func(x, y []complex64) error {
			dk.Apply(0, x, y)
			return nil
		},
		Adjoint: func(x, y []complex64) { dk.ApplyAdjoint(0, x, y) },
		Tol:     pairTol,
	})
	o.Impls = append(o.Impls, Impl{
		Name: "mdc-kernel-dense-checked",
		Apply: func(x, y []complex64) error {
			return dk.ApplyChecked(0, x, y)
		},
		Adjoint: func(x, y []complex64) {
			if err := dk.ApplyAdjointChecked(0, x, y); err != nil {
				panic(err)
			}
		},
		Tol: pairTol,
	})
	// MDC operator with the TLR kernel: the paper's configuration.
	tk := &mdc.TLRKernel{Mats: []*tlr.Matrix{t}}
	tlrOp := &mdc.FreqOperator{K: tk, Workers: workers}
	o.Impls = append(o.Impls, Impl{
		Name: "mdc-tlr",
		Apply: func(x, y []complex64) error {
			tlrOp.Apply(x, y)
			return nil
		},
		Adjoint: tlrOp.ApplyAdjoint,
		Tol:     compTol,
		PairTol: pairTol,
	})
	o.Impls = append(o.Impls, Impl{
		Name: "mdc-kernel-tlr",
		Apply: func(x, y []complex64) error {
			tk.Apply(0, x, y)
			return nil
		},
		Adjoint: func(x, y []complex64) { tk.ApplyAdjoint(0, x, y) },
		Tol:     compTol,
		PairTol: pairTol,
	})
	o.Impls = append(o.Impls, Impl{
		Name: "mdc-kernel-tlr-checked",
		Apply: func(x, y []complex64) error {
			return tk.ApplyChecked(0, x, y)
		},
		Adjoint: func(x, y []complex64) {
			if err := tk.ApplyAdjointChecked(0, x, y); err != nil {
				panic(err)
			}
		},
		Tol:     compTol,
		PairTol: pairTol,
	})
	// The sharded multi-system execution path: the same TLR kernel fanned
	// out over simulated CS-2 shards with failover enabled. Shard
	// assignment must not perturb the numbers, so it shares the TLR
	// tolerances.
	shardedOp, err := mdc.NewShardedFreqOperator(tk, 0, 3)
	if err != nil {
		return nil, fmt.Errorf("testkit: building sharded operator: %w", err)
	}
	o.Impls = append(o.Impls, Impl{
		Name:  "mdc-sharded",
		Apply: shardedOp.Apply,
		Adjoint: func(x, y []complex64) {
			if err := shardedOp.ApplyAdjoint(x, y); err != nil {
				panic(err)
			}
		},
		Tol:     compTol,
		PairTol: pairTol,
	})

	// wsesim: the functional CS-2 PE simulation of the same TLR matrix.
	sw := cfg.StackWidth
	if sw <= 0 {
		sw = cfg.TLROpts.NB
	}
	machine, err := wsesim.Build(t, sw, cs2.DefaultArch())
	if err != nil {
		return nil, fmt.Errorf("testkit: building wsesim machine: %w", err)
	}
	o.machine = machine
	o.perMulFMACs, o.perMulBytes = predictPerMul(machine)
	o.Impls = append(o.Impls, Impl{
		Name: "wsesim",
		Apply: func(x, y []complex64) error {
			machine.MulVec(x, y)
			o.wsesimMuls++
			return nil
		},
		Tol:     compTol,
		PairTol: pairTol,
	})
	o.Impls = append(o.Impls, Impl{
		Name: "wsesim-checked",
		Apply: func(x, y []complex64) error {
			if err := machine.MulVecChecked(x, y); err != nil {
				return err
			}
			o.wsesimMuls++
			return nil
		},
		Tol:     compTol,
		PairTol: pairTol,
	})

	if cfg.Format != precision.FP32 {
		q, err := precision.Quantize(t, precision.Uniform{F: cfg.Format})
		if err != nil {
			return nil, err
		}
		o.qT = q.T
		qTol := MVMTolerance(n, acc, cfg.Format)
		o.Impls = append(o.Impls, Impl{
			Name: "precision-" + cfg.Format.String(),
			Apply: func(x, y []complex64) error {
				q.T.MulVec(x, y)
				return nil
			},
			Adjoint: q.T.MulVecConjTrans,
			Tol:     qTol,
			PairTol: qTol,
		})
	}

	// The out-of-core store: the operator paged onto a (here in-memory)
	// CRC-checked tile store and served back through the byte-budgeted
	// LRU cache — the configuration paper-scale operators run in. The
	// budget is half the compressed footprint, so a full product
	// genuinely faults and evicts; fp32 pages decode bit-identically, so
	// the paths carry the in-memory tolerances.
	oocT, err := storeBacked(t, nil, t.CompressedBytes()/2+1024)
	if err != nil {
		return nil, fmt.Errorf("testkit: building out-of-core twin: %w", err)
	}
	o.oocT = oocT
	o.Impls = append(o.Impls, Impl{
		Name: "opstore-tlr",
		Apply: func(x, y []complex64) error {
			oocT.MulVec(x, y)
			return nil
		},
		Adjoint: oocT.MulVecConjTrans,
		Tol:     compTol,
		PairTol: pairTol,
	})
	o.Impls = append(o.Impls, Impl{
		Name: "opstore-soa",
		Apply: func(x, y []complex64) error {
			oocT.MulVecSoA(x, y)
			return nil
		},
		Adjoint: oocT.MulVecConjTransSoA,
		Tol:     compTol,
		PairTol: pairTol,
	})
	if cfg.Format != precision.FP32 {
		oocQ, err := storeBacked(t, precision.Uniform{F: cfg.Format}, t.CompressedBytes()/2+1024)
		if err != nil {
			return nil, fmt.Errorf("testkit: building quantized out-of-core twin: %w", err)
		}
		o.oocQ = oocQ
		qTol := MVMTolerance(n, acc, cfg.Format)
		o.Impls = append(o.Impls, Impl{
			Name: "opstore-" + cfg.Format.String(),
			Apply: func(x, y []complex64) error {
				oocQ.MulVec(x, y)
				return nil
			},
			Adjoint: oocQ.MulVecConjTrans,
			Tol:     qTol,
			PairTol: qTol,
		})
	}

	// The dense reference itself, as a two-sided Impl: its Apply trivially
	// matches ref, but registering it puts MulVecConjTrans under the
	// adjoint-identity invariant alongside the compressed paths.
	o.Impls = append(o.Impls, Impl{
		Name: "dense",
		Apply: func(x, y []complex64) error {
			a.MulVec(x, y)
			return nil
		},
		Adjoint: a.MulVecConjTrans,
		Tol:     pairTol,
	})
	return o, nil
}

// storeBacked round-trips t through the paged store format (in memory)
// under the given tier policy and returns the out-of-core twin served
// through a cache of the given byte budget.
func storeBacked(t *tlr.Matrix, pol precision.Policy, budget int64) (*tlr.Matrix, error) {
	st, err := pagedStore(t, pol, budget)
	if err != nil {
		return nil, err
	}
	return st.Matrix(0)
}

// pagedStore pages t into an in-memory store image and opens it.
func pagedStore(t *tlr.Matrix, pol precision.Policy, budget int64) (*opstore.Store, error) {
	var img bytes.Buffer
	k := &tlrio.Kernel{Freqs: []float64{0}, Mats: []*tlr.Matrix{t}}
	if err := tlrio.WritePaged(&img, k, tlrio.PagedOptions{Policy: pol}); err != nil {
		return nil, err
	}
	return opstore.OpenBytes(img.Bytes(), budget)
}

// predictPerMul computes, from the chunk plan alone, the §6.6 absolute
// byte count and fmac count one full MulVec must execute: every PE runs
// four real MVMs of its V chunk (Rows × ColExtent) and four per U
// segment (rowExtent × K).
func predictPerMul(m *wsesim.Machine) (fmacs, bytes int64) {
	for _, pe := range m.PEs {
		colExt := pe.ColExtent
		rows := pe.Chunk.Rows
		fmacs += 4 * cs2.FMACs(rows, colExt)
		bytes += 4 * cs2.AbsoluteBytes(rows, colExt)
		for _, seg := range pe.Chunk.Segments {
			rowExt := min((seg.TileRow+1)*m.T.NB, m.T.M) - seg.TileRow*m.T.NB
			fmacs += 4 * cs2.FMACs(rowExt, seg.K)
			bytes += 4 * cs2.AbsoluteBytes(rowExt, seg.K)
		}
	}
	return fmacs, bytes
}

// Check runs trials random vectors through every implementation,
// asserting each against the dense reference (Tol) and against the
// sequential TLR output (PairTol), then verifies the invariants:
// adjoint consistency for every implementation that has an adjoint, and
// wsesim cycle/traffic consistency with the §6.5–§6.7 formulas.
func (o *Oracle) Check(rng *rand.Rand, trials int) error {
	m, n := o.A.Rows, o.A.Cols
	ref := make([]complex64, m)
	pairRef := make([]complex64, m)
	got := make([]complex64, m)
	for trial := 0; trial < trials; trial++ {
		x := Vec(rng, n)
		o.A.MulVec(x, ref)
		for k, impl := range o.Impls {
			if err := impl.Apply(x, got); err != nil {
				return fmt.Errorf("oracle trial %d: %s failed: %w", trial, impl.Name, err)
			}
			if e := RelErr(got, ref); e > impl.Tol {
				return fmt.Errorf("oracle trial %d: %s deviates from dense reference: relErr %.3g > tol %.3g",
					trial, impl.Name, e, impl.Tol)
			}
			if k == 0 {
				copy(pairRef, got)
				continue
			}
			if impl.PairTol > 0 {
				if e := RelErr(got, pairRef); e > impl.PairTol {
					return fmt.Errorf("oracle trial %d: %s deviates from %s: relErr %.3g > pairTol %.3g",
						trial, impl.Name, o.Impls[0].Name, e, impl.PairTol)
				}
			}
		}
	}
	return o.checkInvariants(rng)
}

// implOperator adapts an Impl with an adjoint to the Operator shape.
type implOperator struct {
	m, n int
	impl Impl
}

func (io *implOperator) Rows() int { return io.m }
func (io *implOperator) Cols() int { return io.n }
func (io *implOperator) Apply(x, y []complex64) {
	if err := io.impl.Apply(x, y); err != nil {
		panic(err)
	}
}
func (io *implOperator) ApplyAdjoint(x, y []complex64) { io.impl.Adjoint(x, y) }

func (o *Oracle) checkInvariants(rng *rand.Rand) error {
	m, n := o.A.Rows, o.A.Cols
	// 1. adjoint consistency ⟨Ax, y⟩ ≈ ⟨x, Aᴴy⟩ for every two-sided path
	//    (what LSQR/CGLS convergence rests on).
	adjTol := 1e-3
	for _, impl := range o.Impls {
		if impl.Adjoint == nil {
			continue
		}
		gap := AdjointGap(&implOperator{m: m, n: n, impl: impl}, rng, 3)
		if gap > adjTol {
			return fmt.Errorf("oracle: %s violates adjoint identity: gap %.3g > %.3g",
				impl.Name, gap, adjTol)
		}
	}
	// 2. fused normal product: MulVecNormal fuses the adjoint∘forward
	//    composition around a single hot pass over the U panels without
	//    reordering a single accumulation, so it must reproduce the SoA
	//    composition bit for bit.
	{
		x := Vec(rng, n)
		ax := make([]complex64, m)
		comp := make([]complex64, n)
		fused := make([]complex64, n)
		o.T.MulVecSoA(x, ax)
		o.T.MulVecConjTransSoA(ax, comp)
		o.T.MulVecNormal(x, fused)
		if d := MaxULPDist(fused, comp); d != 0 {
			return fmt.Errorf("oracle: fused normal product %d ULPs from SoA adjoint∘forward composition", d)
		}
		// The MDC layers above the fused kernel add no arithmetic of their
		// own (single frequency, unit scale), so they must reproduce the
		// tlr.Matrix product exactly.
		normalOp := &mdc.FreqOperator{K: &mdc.TLRKernel{Mats: []*tlr.Matrix{o.T}}, Workers: 1}
		opOut := make([]complex64, n)
		normalOp.ApplyNormal(x, opOut)
		if d := MaxULPDist(opOut, fused); d != 0 {
			return fmt.Errorf("oracle: FreqOperator.ApplyNormal %d ULPs from the fused TLR normal product", d)
		}
	}
	// 3. out-of-core identity: the store-backed twin runs the identical
	//    kernels on bit-identically decoded tiles, so both the AoS and
	//    SoA products — and, under a reduced format, the quantized pair —
	//    must reproduce their in-memory counterparts to the bit. This is
	//    the differential proof that paging, CRC verification, tile
	//    decode, and cache eviction are invisible to the numerics.
	{
		x := Vec(rng, n)
		mem := make([]complex64, m)
		ooc := make([]complex64, m)
		o.T.MulVec(x, mem)
		o.oocT.MulVec(x, ooc)
		if d := MaxULPDist(ooc, mem); d != 0 {
			return fmt.Errorf("oracle: store-backed MulVec %d ULPs from in-memory", d)
		}
		o.T.MulVecSoA(x, mem)
		o.oocT.MulVecSoA(x, ooc)
		if d := MaxULPDist(ooc, mem); d != 0 {
			return fmt.Errorf("oracle: store-backed MulVecSoA %d ULPs from in-memory", d)
		}
		if o.oocQ != nil {
			o.qT.MulVec(x, mem)
			o.oocQ.MulVec(x, ooc)
			if d := MaxULPDist(ooc, mem); d != 0 {
				return fmt.Errorf("oracle: store-backed quantized MulVec %d ULPs from precision.Quantize twin", d)
			}
		}
	}
	// 4. cycle model: the machine's worst-chunk cycle count must be
	//    positive and exactly reproduce the §6.7 strategy-1 formula.
	var wantCycles int64
	for _, pe := range o.machine.PEs {
		c := cs2.ChunkCycles(o.T.NB, pe.Chunk.Rows, len(pe.Chunk.Segments))
		if c <= 0 {
			return fmt.Errorf("oracle: nonpositive chunk cycles for PE at col %d row %d",
				pe.Chunk.Col, pe.Chunk.Row0)
		}
		if c > wantCycles {
			wantCycles = c
		}
	}
	if got := o.machine.ModelCycles(); got != wantCycles {
		return fmt.Errorf("oracle: ModelCycles %d != ChunkCycles recomputation %d", got, wantCycles)
	}
	// 5. executed traffic: the meters tallied while the oracle ran must
	//    equal the §6.6 absolute-bytes prediction from the chunk plan.
	if o.wsesimMuls > 0 {
		meter := o.machine.TotalMeter()
		if meter.FMACs != o.wsesimMuls*o.perMulFMACs {
			return fmt.Errorf("oracle: executed FMACs %d != predicted %d (%d products × %d)",
				meter.FMACs, o.wsesimMuls*o.perMulFMACs, o.wsesimMuls, o.perMulFMACs)
		}
		if meter.Bytes() != o.wsesimMuls*o.perMulBytes {
			return fmt.Errorf("oracle: executed bytes %d != predicted absolute bytes %d",
				meter.Bytes(), o.wsesimMuls*o.perMulBytes)
		}
	}
	return nil
}

// CompressionHolds asserts the TLR approximation actually meets the
// configured accuracy on the dense matrix — the premise the per-impl
// tolerances are derived from. Tests call it before Check so a tolerance
// violation is attributed to compression rather than execution.
func (o *Oracle) CompressionHolds() error {
	acc := o.Cfg.TLROpts.Tol
	if acc == 0 {
		return nil
	}
	rec := o.T.Reconstruct()
	// per-tile Frobenius bounds compound at most √(mt·nt) in the global
	// Frobenius norm; in practice the global error sits below acc itself.
	// Use the analytic worst case.
	bound := acc * float64(o.T.MT*o.T.NT)
	if e := dense.RelError(rec, o.A); e > bound {
		return fmt.Errorf("oracle: reconstruction error %.3g exceeds bound %.3g (acc %.3g)", e, bound, acc)
	}
	return nil
}
