package testkit

import (
	"fmt"

	"repro/internal/batch"
	"repro/internal/cs2"
	"repro/internal/dense"
	"repro/internal/mdc"
	"repro/internal/opstore"
	"repro/internal/tlr"
	"repro/internal/wsesim"
)

// HotPath is one runtime-verifiable kernel of the allocation-budget
// contract. The static half lives in internal/analysis/hotpath.go: the
// allocfree analyzer proves the registered functions free of allocating
// constructs. This registry is the runtime half — every entry's op must
// measure 0 allocs/op under testing.AllocsPerRun once warmed up
// (hotpath_alloc_test.go), and the two registries are cross-checked
// name-for-name so neither can drift alone.
type HotPath struct {
	// Name matches HotPathSeed.Kernel in internal/analysis/hotpath.go.
	Name string
	// Setup builds the kernel's operands deterministically and returns
	// the steady-state operation to measure.
	Setup func() (op func(), err error)
}

// hotPathDims are the shared deterministic problem dimensions: big
// enough for multiple tiles in both grid directions (edge tiles
// included), small enough to keep the gate fast.
const (
	hotM  = 48
	hotN  = 40
	hotNB = 16
)

// hotPathMatrix builds the shared deterministic TLR matrix.
func hotPathMatrix() (*tlr.Matrix, error) {
	rng := NewRNG(7)
	a := DecayMat(rng, hotM, hotN, 0.5)
	return tlr.Compress(a, tlr.Options{NB: hotNB, Tol: 1e-4, Workers: 1})
}

// HotPaths returns the runtime allocation-budget registry. Every entry
// runs single-worker: the parallel paths spawn goroutines whose
// allocations are legitimate scheduling cost, not kernel cost.
func HotPaths() []HotPath {
	return []HotPath{
		{Name: "tlr.mulvec", Setup: func() (func(), error) {
			t, err := hotPathMatrix()
			if err != nil {
				return nil, err
			}
			x, y := make([]complex64, hotN), make([]complex64, hotM)
			x[0], x[hotN-1] = 1, 2i
			return func() { t.MulVec(x, y) }, nil
		}},
		{Name: "tlr.mulvec_adjoint", Setup: func() (func(), error) {
			t, err := hotPathMatrix()
			if err != nil {
				return nil, err
			}
			x, y := make([]complex64, hotM), make([]complex64, hotN)
			x[0], x[hotM-1] = 1, 2i
			return func() { t.MulVecConjTrans(x, y) }, nil
		}},
		{Name: "tlr.mulvec_batched", Setup: func() (func(), error) {
			t, err := hotPathMatrix()
			if err != nil {
				return nil, err
			}
			x, y := make([]complex64, hotN), make([]complex64, hotM)
			x[0], x[hotN-1] = 1, 2i
			return func() {
				if err := t.MulVecBatched(x, y, 1); err != nil {
					panic(err)
				}
			}, nil
		}},
		{Name: "tlr.mulvec_soa", Setup: func() (func(), error) {
			t, err := hotPathMatrix()
			if err != nil {
				return nil, err
			}
			x, y := make([]complex64, hotN), make([]complex64, hotM)
			x[0], x[hotN-1] = 1, 2i
			return func() { t.MulVecSoA(x, y) }, nil
		}},
		{Name: "tlr.mulvec_soa_adjoint", Setup: func() (func(), error) {
			t, err := hotPathMatrix()
			if err != nil {
				return nil, err
			}
			x, y := make([]complex64, hotM), make([]complex64, hotN)
			x[0], x[hotM-1] = 1, 2i
			return func() { t.MulVecConjTransSoA(x, y) }, nil
		}},
		{Name: "tlr.mulvec_normal", Setup: func() (func(), error) {
			t, err := hotPathMatrix()
			if err != nil {
				return nil, err
			}
			x, y := make([]complex64, hotN), make([]complex64, hotN)
			x[0], x[hotN-1] = 1, 2i
			return func() { t.MulVecNormal(x, y) }, nil
		}},
		{Name: "tlr.mulvec_batched_aos", Setup: func() (func(), error) {
			t, err := hotPathMatrix()
			if err != nil {
				return nil, err
			}
			x, y := make([]complex64, hotN), make([]complex64, hotM)
			x[0], x[hotN-1] = 1, 2i
			return func() {
				if err := t.MulVecBatchedAoS(x, y, 1); err != nil {
					panic(err)
				}
			}, nil
		}},
		{Name: "batch.run", Setup: func() (func(), error) {
			tasks, err := hotPathBatch()
			if err != nil {
				return nil, err
			}
			return func() {
				if err := batch.Run(tasks, batch.Options{Workers: 1}); err != nil {
					panic(err)
				}
			}, nil
		}},
		{Name: "batch.run_fourreal", Setup: func() (func(), error) {
			tasks, err := hotPathBatch()
			if err != nil {
				return nil, err
			}
			return func() {
				if err := batch.Run(tasks, batch.Options{Workers: 1, FourReal: true}); err != nil {
					panic(err)
				}
			}, nil
		}},
		{Name: "batch.run_soa", Setup: func() (func(), error) {
			tasks, err := hotPathBatchSoA()
			if err != nil {
				return nil, err
			}
			return func() {
				if err := batch.Run(tasks, batch.Options{Workers: 1}); err != nil {
					panic(err)
				}
			}, nil
		}},
		{Name: "mdc.kernel_dense", Setup: func() (func(), error) {
			rng := NewRNG(7)
			k, err := mdc.NewDenseKernel([]*dense.Matrix{DecayMat(rng, hotM, hotN, 0.5)})
			if err != nil {
				return nil, err
			}
			x, y := make([]complex64, hotN), make([]complex64, hotM)
			x[0] = 1
			return func() { k.Apply(0, x, y) }, nil
		}},
		{Name: "mdc.kernel_tlr", Setup: func() (func(), error) {
			t, err := hotPathMatrix()
			if err != nil {
				return nil, err
			}
			k := &mdc.TLRKernel{Mats: []*tlr.Matrix{t}}
			x, y := make([]complex64, hotN), make([]complex64, hotM)
			x[0] = 1
			return func() { k.Apply(0, x, y) }, nil
		}},
		{Name: "mdc.kernel_tlr_normal", Setup: func() (func(), error) {
			t, err := hotPathMatrix()
			if err != nil {
				return nil, err
			}
			k := &mdc.TLRKernel{Mats: []*tlr.Matrix{t}}
			x, y := make([]complex64, hotN), make([]complex64, hotN)
			x[0] = 1
			return func() { k.ApplyNormal(0, x, y) }, nil
		}},
		{Name: "opstore.tile_hit", Setup: func() (func(), error) {
			st, nTiles, err := hotPathStore()
			if err != nil {
				return nil, err
			}
			c := st.Cache()
			// Warm every tile in: the generous budget keeps all resident,
			// so the measured op cycles through pure cache hits — one
			// atomic pointer load plus counter bumps, 0 allocs.
			for g := 0; g < nTiles; g++ {
				if _, err := c.Tile(g); err != nil {
					return nil, err
				}
			}
			g := 0
			return func() {
				if _, err := c.Tile(g); err != nil {
					panic(err)
				}
				g++
				if g == nTiles {
					g = 0
				}
			}, nil
		}},
		{Name: "tlr.mulvec_ooc", Setup: func() (func(), error) {
			st, _, err := hotPathStore()
			if err != nil {
				return nil, err
			}
			t, err := st.Matrix(0)
			if err != nil {
				return nil, err
			}
			x, y := make([]complex64, hotN), make([]complex64, hotM)
			x[0], x[hotN-1] = 1, 2i
			// Warm-up runs fault every tile in; at the budget above
			// nothing evicts, so the measured product is all cache hits
			// through Matrix.tileAt.
			return func() { t.MulVec(x, y) }, nil
		}},
		{Name: "wsesim.mulvec", Setup: func() (func(), error) {
			t, err := hotPathMatrix()
			if err != nil {
				return nil, err
			}
			m, err := wsesim.Build(t, hotNB, cs2.DefaultArch())
			if err != nil {
				return nil, fmt.Errorf("testkit: building wsesim machine: %w", err)
			}
			x, y := make([]complex64, hotN), make([]complex64, hotM)
			x[0], x[hotN-1] = 1, 2i
			return func() { m.MulVec(x, y) }, nil
		}},
	}
}

// hotPathStore pages the shared deterministic matrix into an in-memory
// tile store with a budget generous enough that nothing ever evicts —
// the cache-hit steady state the two out-of-core kernels are gated on.
func hotPathStore() (*opstore.Store, int, error) {
	t, err := hotPathMatrix()
	if err != nil {
		return nil, 0, err
	}
	st, err := pagedStore(t, nil, 4*t.CompressedBytes()+4096)
	if err != nil {
		return nil, 0, err
	}
	return st, t.MT * t.NT, nil
}

// hotPathBatch builds the deterministic variable-size batch: one OpN
// member per tile U base, the phase-3 shape of the batched TLR-MVM.
// The tight-stride U factors satisfy the four-real fast-path
// preconditions (OpN, Beta 0, Alpha 1, LDA == M), so the same batch
// exercises both the native path and the §6.6 decomposition.
func hotPathBatch() ([]batch.MVM, error) {
	t, err := hotPathMatrix()
	if err != nil {
		return nil, err
	}
	var tasks []batch.MVM
	x := make([]complex64, hotM)
	for i := range x {
		x[i] = complex(float32(i%5)-2, float32(i%3))
	}
	for _, tile := range t.Tiles {
		u := tile.U
		tasks = append(tasks, batch.MVM{
			Oper: batch.OpN, M: u.Rows, N: u.Cols, Alpha: 1,
			A: u.Data, LDA: u.Stride, X: x[:u.Cols], Y: make([]complex64, u.Rows),
		})
	}
	return tasks, nil
}

// hotPathBatchSoA builds the same deterministic batch with each member's
// matrix carried as presplit float32 planes (batch.MVM.AR/AI), plus one
// OpC member per tile so both split-plane executors stay under the gate.
func hotPathBatchSoA() ([]batch.MVM, error) {
	t, err := hotPathMatrix()
	if err != nil {
		return nil, err
	}
	var tasks []batch.MVM
	x := make([]complex64, hotM)
	for i := range x {
		x[i] = complex(float32(i%5)-2, float32(i%3))
	}
	for _, tile := range t.Tiles {
		u := tile.U
		if u.Cols == 0 {
			continue
		}
		ne := u.Stride*(u.Cols-1) + u.Rows
		ar, ai := make([]float32, ne), make([]float32, ne)
		for k := 0; k < ne; k++ {
			ar[k], ai[k] = real(u.Data[k]), imag(u.Data[k])
		}
		tasks = append(tasks, batch.MVM{
			Oper: batch.OpN, M: u.Rows, N: u.Cols, Alpha: 1,
			AR: ar, AI: ai, LDA: u.Stride, X: x[:u.Cols], Y: make([]complex64, u.Rows),
		})
		tasks = append(tasks, batch.MVM{
			Oper: batch.OpC, M: u.Rows, N: u.Cols, Alpha: 1,
			AR: ar, AI: ai, LDA: u.Stride, X: x[:u.Rows], Y: make([]complex64, u.Cols),
		})
	}
	return tasks, nil
}
