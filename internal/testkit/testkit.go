// Package testkit is the shared correctness-tooling subsystem for the
// TLR-MVM reproduction. Before it existed every package validated itself
// in isolation with copy-pasted helpers (relErr in the lsqr and cgls
// tests, randMat in the cfloat tests, ad-hoc rand.New seeding
// everywhere); testkit centralizes three layers:
//
//  1. deterministic seeded generators for the matrix classes the paper
//     exercises — random dense Gaussian, rank-decaying, Hilbert-like,
//     and synthetic seismic frequency slices from internal/seismic;
//  2. uniform error metrics — relative 2-norm / Frobenius error,
//     element-wise max deviation, complex64 ULP distance — plus the
//     precision-derived tolerance formulas that turn a compression
//     accuracy and a storage format into an MVM error budget;
//  3. a differential oracle driver (oracle.go) that runs the same
//     (matrix, vector, tolerance, precision) case through dense MVM,
//     TLR-MVM (sequential, parallel, batched), the MDC operator, and
//     the wsesim functional path, asserting pairwise agreement and
//     hardware-model invariants.
//
// The package is imported only from tests. Packages that testkit itself
// depends on (dense, cfloat, tlr, batch, mdc, wsesim, precision, cs2,
// seismic) must consume it from external test packages (package
// foo_test) to avoid import cycles; leaf packages (adaptive, tlrmmm,
// lsqr, cgls, ...) may use it from either.
package testkit

import (
	"math/rand"
	"sync"

	"repro/internal/dense"
	"repro/internal/seismic"
)

// NewRNG returns a deterministic generator for the given seed. All
// repository tests derive their randomness from here so a failure
// reproduces from the seed alone.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Vec returns a length-n vector of iid standard complex Gaussian entries.
func Vec(rng *rand.Rand, n int) []complex64 {
	v := make([]complex64, n)
	for i := range v {
		v[i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
	}
	return v
}

// Mat returns an m×n matrix of iid standard complex Gaussian entries —
// the incompressible worst case for TLR (tile ranks stay full).
func Mat(rng *rand.Rand, m, n int) *dense.Matrix {
	return dense.Random(rng, m, n)
}

// LowRankMat returns an m×n matrix of exact rank r.
func LowRankMat(rng *rand.Rand, m, n, r int) *dense.Matrix {
	return dense.RandomLowRank(rng, m, n, r)
}

// DecayMat returns an m×n matrix whose singular values decay as decay^k —
// the data-sparse regime of Hilbert-sorted seismic frequency matrices
// where TLR compression pays off.
func DecayMat(rng *rand.Rand, m, n int, decay float64) *dense.Matrix {
	return dense.RandomDecay(rng, m, n, decay)
}

// HilbertMat returns the m×n complex Hilbert-like matrix
// A[i,j] = (1 + i·0.5) / (1 + i + j): deterministic (no rng), severely
// rank-deficient, and numerically classic — the canonical quickly-
// compressible test input.
func HilbertMat(m, n int) *dense.Matrix {
	a := dense.New(m, n)
	for j := 0; j < n; j++ {
		col := a.Col(j)
		for i := range col {
			d := float32(1 + i + j)
			col[i] = complex(1/d, 0.5/d)
		}
	}
	return a
}

var (
	seismicOnce sync.Once
	seismicDS   *seismic.Dataset
	seismicErr  error
)

// seismicDataset synthesizes (once per process) a small survey whose
// frequency matrices have the physical structure of the paper's kernels:
// Green's-function phase fronts plus the free-surface multiple series.
func seismicDataset() (*seismic.Dataset, error) {
	seismicOnce.Do(func() {
		seismicDS, seismicErr = seismic.Generate(seismic.Options{
			Geom: seismic.Geometry{
				NsX: 8, NsY: 6, NrX: 7, NrY: 5,
				Dx: 20, Dy: 20, SrcDepth: 10, RecDepth: 300,
			},
			Nt: 128, Dt: 0.004,
		})
	})
	return seismicDS, seismicErr
}

// SeismicSlice returns one synthetic seismic frequency matrix
// (sources × seafloor points) from the cached laptop-scale survey.
// f indexes the in-band frequencies modulo the band size, so any
// nonnegative value is valid. The returned matrix is a copy.
func SeismicSlice(f int) (*dense.Matrix, error) {
	ds, err := seismicDataset()
	if err != nil {
		return nil, err
	}
	return ds.K[f%len(ds.K)].Clone(), nil
}

// SeismicBand returns nf consecutive frequency matrices from the cached
// survey (copies), for multi-frequency kernel tests.
func SeismicBand(nf int) ([]*dense.Matrix, error) {
	ds, err := seismicDataset()
	if err != nil {
		return nil, err
	}
	if nf > len(ds.K) {
		nf = len(ds.K)
	}
	out := make([]*dense.Matrix, nf)
	for i := 0; i < nf; i++ {
		out[i] = ds.K[i].Clone()
	}
	return out, nil
}
