// Package suite is a self-contained, testify-compatible test-suite
// runner: embed Suite in a struct, hang Test* methods (and the usual
// SetupSuite/SetupTest/TearDownTest/TearDownSuite hooks) off it, and
// drive it with Run. The API mirrors github.com/stretchr/testify/suite
// so suites written here port verbatim once that dependency is
// available; the repo vendors nothing, so the runner itself lives
// in-tree (standing rule: stub missing deps, never install them).
package suite

import (
	"reflect"
	"strings"
	"testing"
)

// TestingSuite is the contract Run drives: anything that can hold the
// per-test *testing.T. Embedding Suite satisfies it.
type TestingSuite interface {
	T() *testing.T
	SetT(*testing.T)
}

// The optional lifecycle hooks, checked by interface exactly like
// testify does.
type (
	// SetupAllSuite runs once before the first test method.
	SetupAllSuite interface{ SetupSuite() }
	// SetupTestSuite runs before every test method.
	SetupTestSuite interface{ SetupTest() }
	// TearDownAllSuite runs once after the last test method.
	TearDownAllSuite interface{ TearDownSuite() }
	// TearDownTestSuite runs after every test method, even on failure.
	TearDownTestSuite interface{ TearDownTest() }
)

// Suite is the embeddable base: it carries the current *testing.T and
// exposes the assertion sets.
type Suite struct {
	t *testing.T

	require *Assertions
	assert  *Assertions
}

// T returns the *testing.T of the currently running test method.
func (s *Suite) T() *testing.T { return s.t }

// SetT installs the *testing.T for the next test method and rebinds the
// assertion sets to it.
func (s *Suite) SetT(t *testing.T) {
	s.t = t
	s.require = &Assertions{t: t, fatal: true}
	s.assert = &Assertions{t: t, fatal: false}
}

// Require returns assertions that stop the test method on failure
// (FailNow semantics).
func (s *Suite) Require() *Assertions { return s.require }

// Assert returns assertions that mark the test failed but keep running
// (Fail semantics).
func (s *Suite) Assert() *Assertions { return s.assert }

// Run runs every exported Test* method of the suite as a subtest of t,
// wiring the lifecycle hooks around them.
func Run(t *testing.T, s TestingSuite) {
	t.Helper()
	s.SetT(t)
	if setup, ok := s.(SetupAllSuite); ok {
		setup.SetupSuite()
	}
	defer func() {
		if tear, ok := s.(TearDownAllSuite); ok {
			tear.TearDownSuite()
		}
	}()

	v := reflect.ValueOf(s)
	typ := v.Type()
	for i := 0; i < typ.NumMethod(); i++ {
		m := typ.Method(i)
		if !strings.HasPrefix(m.Name, "Test") {
			continue
		}
		if m.Type.NumIn() != 1 || m.Type.NumOut() != 0 {
			continue // receiver only, no args, no returns
		}
		method := v.Method(i)
		t.Run(m.Name, func(t *testing.T) {
			parent := s.T()
			s.SetT(t)
			defer s.SetT(parent)
			if setup, ok := s.(SetupTestSuite); ok {
				setup.SetupTest()
			}
			defer func() {
				if tear, ok := s.(TearDownTestSuite); ok {
					tear.TearDownTest()
				}
			}()
			method.Call(nil)
		})
	}
}
