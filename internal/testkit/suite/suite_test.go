// Tests for the suite runner: hook ordering, per-test T rebinding, and
// the predicate helpers behind the assertion set.
package suite

import (
	"errors"
	"testing"
)

// recordingSuite logs every lifecycle call so the harness test can
// assert ordering.
type recordingSuite struct {
	Suite
	calls *[]string
}

func (s *recordingSuite) SetupSuite()    { *s.calls = append(*s.calls, "setup-suite") }
func (s *recordingSuite) TearDownSuite() { *s.calls = append(*s.calls, "teardown-suite") }
func (s *recordingSuite) SetupTest()     { *s.calls = append(*s.calls, "setup-test") }
func (s *recordingSuite) TearDownTest()  { *s.calls = append(*s.calls, "teardown-test") }

func (s *recordingSuite) TestAlpha() {
	*s.calls = append(*s.calls, "alpha")
	s.Require().NotNil(s.T(), "T must be bound inside a test method")
}

func (s *recordingSuite) TestBeta() { *s.calls = append(*s.calls, "beta") }

// TestSkippedHelper must not run: it takes an argument.
func (s *recordingSuite) TestSkippedHelper(int) { *s.calls = append(*s.calls, "skipped") }

func TestRunInvokesHooksInOrder(t *testing.T) {
	var calls []string
	Run(t, &recordingSuite{calls: &calls})

	want := []string{
		"setup-suite",
		"setup-test", "alpha", "teardown-test",
		"setup-test", "beta", "teardown-test",
	}
	// TearDownSuite runs in a deferred block after Run's loop; subtests
	// of the same T have completed by then.
	want = append(want, "teardown-suite")
	if len(calls) != len(want) {
		t.Fatalf("calls = %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("call %d = %q, want %q (full: %v)", i, calls[i], want[i], calls)
		}
	}
}

type plainSuite struct{ Suite }

func (s *plainSuite) TestAssertionsPass() {
	req := s.Require()
	req.Equal(3, 3)
	req.NotEqual(3, 4)
	req.True(true)
	req.False(false)
	req.NoError(nil)
	req.Error(errors.New("x"))
	req.ErrorContains(errors.New("queue is full"), "full")
	req.Nil(nil)
	var typedNil *plainSuite
	req.Nil(typedNil, "typed nil pointers count as nil")
	req.NotNil(s)
	req.Len([]int{1, 2}, 2)
	req.Empty("")
	req.NotEmpty("x")
	req.Contains("backpressure", "press")
	req.Contains([]string{"a", "b"}, "b")
	req.Contains(map[string]int{"k": 1}, "k")
	req.Greater(2, 1)
	req.GreaterOrEqual(int64(2), int64(2))
	req.Less(1.0, 1.5)
	req.LessOrEqual(1, 1)
	req.InDelta(1.0, 1.0001, 1e-3)

	var apiErr *testError
	req.ErrorAs(wrap(&testError{msg: "inner"}), &apiErr)
	req.Equal("inner", apiErr.msg)
}

type testError struct{ msg string }

func (e *testError) Error() string { return e.msg }

func wrap(err error) error { return errors.Join(errors.New("outer"), err) }

func TestSuiteAssertions(t *testing.T) {
	Run(t, new(plainSuite))
}

func TestPredicates(t *testing.T) {
	if !isEmpty([]int(nil)) || isEmpty([]int{1}) {
		t.Error("isEmpty slice semantics")
	}
	if !isNil((*testing.T)(nil)) || isNil(t) {
		t.Error("isNil pointer semantics")
	}
	if compareNumeric(int8(3), 2.5) != 1 || compareNumeric(uint(1), int64(2)) != -1 || compareNumeric(2, 2.0) != 0 {
		t.Error("compareNumeric must compare across numeric kinds")
	}
	if !containsElement([]int{1, 2}, 2) || containsElement([]int{1}, 9) {
		t.Error("containsElement slice semantics")
	}
	if !objectsEqual([]byte("ab"), []byte("ab")) {
		t.Error("byte slices compare by content")
	}
}
