// Assertions for package suite, mirroring the testify assert/require
// surface the serving-layer tests need. Each method reports success so
// callers can chain logic on non-fatal assertions.
package suite

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
)

// Assertions is one assertion set bound to a *testing.T. fatal selects
// require semantics (FailNow) over assert semantics (Fail).
type Assertions struct {
	t     *testing.T
	fatal bool
}

// fail records a failure, formatted testify-style with optional
// user message-and-args appended.
func (a *Assertions) fail(msg string, msgAndArgs ...any) bool {
	a.t.Helper()
	if len(msgAndArgs) > 0 {
		if format, ok := msgAndArgs[0].(string); ok && len(msgAndArgs) > 1 {
			msg += ": " + fmt.Sprintf(format, msgAndArgs[1:]...)
		} else {
			parts := make([]string, len(msgAndArgs))
			for i, m := range msgAndArgs {
				parts[i] = fmt.Sprint(m)
			}
			msg += ": " + strings.Join(parts, " ")
		}
	}
	if a.fatal {
		a.t.Fatal(msg)
	} else {
		a.t.Error(msg)
	}
	return false
}

// Equal asserts deep equality.
func (a *Assertions) Equal(expected, actual any, msgAndArgs ...any) bool {
	a.t.Helper()
	if objectsEqual(expected, actual) {
		return true
	}
	return a.fail(fmt.Sprintf("not equal:\n expected: %v\n actual:   %v", expected, actual), msgAndArgs...)
}

// NotEqual asserts the two values differ.
func (a *Assertions) NotEqual(expected, actual any, msgAndArgs ...any) bool {
	a.t.Helper()
	if !objectsEqual(expected, actual) {
		return true
	}
	return a.fail(fmt.Sprintf("should not be equal: %v", actual), msgAndArgs...)
}

// True asserts value.
func (a *Assertions) True(value bool, msgAndArgs ...any) bool {
	a.t.Helper()
	if value {
		return true
	}
	return a.fail("should be true", msgAndArgs...)
}

// False asserts !value.
func (a *Assertions) False(value bool, msgAndArgs ...any) bool {
	a.t.Helper()
	if !value {
		return true
	}
	return a.fail("should be false", msgAndArgs...)
}

// NoError asserts err is nil.
func (a *Assertions) NoError(err error, msgAndArgs ...any) bool {
	a.t.Helper()
	if err == nil {
		return true
	}
	return a.fail(fmt.Sprintf("unexpected error: %v", err), msgAndArgs...)
}

// Error asserts err is non-nil.
func (a *Assertions) Error(err error, msgAndArgs ...any) bool {
	a.t.Helper()
	if err != nil {
		return true
	}
	return a.fail("expected an error, got nil", msgAndArgs...)
}

// ErrorAs asserts errors.As(err, target).
func (a *Assertions) ErrorAs(err error, target any, msgAndArgs ...any) bool {
	a.t.Helper()
	if errors.As(err, target) {
		return true
	}
	return a.fail(fmt.Sprintf("error %v is not assignable to %T", err, target), msgAndArgs...)
}

// ErrorContains asserts err's message contains substr.
func (a *Assertions) ErrorContains(err error, substr string, msgAndArgs ...any) bool {
	a.t.Helper()
	if err == nil {
		return a.fail(fmt.Sprintf("expected an error containing %q, got nil", substr), msgAndArgs...)
	}
	if strings.Contains(err.Error(), substr) {
		return true
	}
	return a.fail(fmt.Sprintf("error %q does not contain %q", err.Error(), substr), msgAndArgs...)
}

// Nil asserts the value is nil (typed or untyped).
func (a *Assertions) Nil(value any, msgAndArgs ...any) bool {
	a.t.Helper()
	if isNil(value) {
		return true
	}
	return a.fail(fmt.Sprintf("expected nil, got %v", value), msgAndArgs...)
}

// NotNil asserts the value is non-nil.
func (a *Assertions) NotNil(value any, msgAndArgs ...any) bool {
	a.t.Helper()
	if !isNil(value) {
		return true
	}
	return a.fail("expected a non-nil value", msgAndArgs...)
}

// Len asserts the container has exactly n elements.
func (a *Assertions) Len(object any, n int, msgAndArgs ...any) bool {
	a.t.Helper()
	v := reflect.ValueOf(object)
	switch v.Kind() {
	case reflect.Slice, reflect.Array, reflect.Map, reflect.Chan, reflect.String:
		if v.Len() == n {
			return true
		}
		return a.fail(fmt.Sprintf("expected length %d, got %d", n, v.Len()), msgAndArgs...)
	}
	return a.fail(fmt.Sprintf("%T has no length", object), msgAndArgs...)
}

// Empty asserts the container has no elements.
func (a *Assertions) Empty(object any, msgAndArgs ...any) bool {
	a.t.Helper()
	if isEmpty(object) {
		return true
	}
	return a.fail(fmt.Sprintf("expected empty, got %v", object), msgAndArgs...)
}

// NotEmpty asserts the container has at least one element.
func (a *Assertions) NotEmpty(object any, msgAndArgs ...any) bool {
	a.t.Helper()
	if !isEmpty(object) {
		return true
	}
	return a.fail("expected a non-empty value", msgAndArgs...)
}

// Contains asserts the string/slice/map contains the element.
func (a *Assertions) Contains(container, element any, msgAndArgs ...any) bool {
	a.t.Helper()
	if containsElement(container, element) {
		return true
	}
	return a.fail(fmt.Sprintf("%v does not contain %v", container, element), msgAndArgs...)
}

// Greater asserts a > b for ordered numeric values.
func (a *Assertions) Greater(x, y any, msgAndArgs ...any) bool {
	a.t.Helper()
	if compareNumeric(x, y) > 0 {
		return true
	}
	return a.fail(fmt.Sprintf("expected %v > %v", x, y), msgAndArgs...)
}

// GreaterOrEqual asserts a >= b.
func (a *Assertions) GreaterOrEqual(x, y any, msgAndArgs ...any) bool {
	a.t.Helper()
	if compareNumeric(x, y) >= 0 {
		return true
	}
	return a.fail(fmt.Sprintf("expected %v >= %v", x, y), msgAndArgs...)
}

// Less asserts a < b.
func (a *Assertions) Less(x, y any, msgAndArgs ...any) bool {
	a.t.Helper()
	if compareNumeric(x, y) < 0 {
		return true
	}
	return a.fail(fmt.Sprintf("expected %v < %v", x, y), msgAndArgs...)
}

// LessOrEqual asserts a <= b.
func (a *Assertions) LessOrEqual(x, y any, msgAndArgs ...any) bool {
	a.t.Helper()
	if compareNumeric(x, y) <= 0 {
		return true
	}
	return a.fail(fmt.Sprintf("expected %v <= %v", x, y), msgAndArgs...)
}

// InDelta asserts |expected-actual| <= delta.
func (a *Assertions) InDelta(expected, actual, delta float64, msgAndArgs ...any) bool {
	a.t.Helper()
	if diff := math.Abs(expected - actual); diff <= delta {
		return true
	}
	return a.fail(fmt.Sprintf("|%g - %g| = %g exceeds delta %g",
		expected, actual, math.Abs(expected-actual), delta), msgAndArgs...)
}

// Eventually is not provided: the serving tests use explicit
// notification channels, not polling, so a time-based helper would only
// invite flakes.

func objectsEqual(expected, actual any) bool {
	if expected == nil || actual == nil {
		return expected == actual
	}
	if eb, ok := expected.([]byte); ok {
		ab, ok := actual.([]byte)
		return ok && string(eb) == string(ab)
	}
	return reflect.DeepEqual(expected, actual)
}

func isNil(value any) bool {
	if value == nil {
		return true
	}
	v := reflect.ValueOf(value)
	switch v.Kind() {
	case reflect.Chan, reflect.Func, reflect.Interface,
		reflect.Map, reflect.Ptr, reflect.Slice, reflect.UnsafePointer:
		return v.IsNil()
	}
	return false
}

func isEmpty(object any) bool {
	if object == nil {
		return true
	}
	v := reflect.ValueOf(object)
	switch v.Kind() {
	case reflect.Slice, reflect.Array, reflect.Map, reflect.Chan, reflect.String:
		return v.Len() == 0
	case reflect.Ptr:
		return v.IsNil() || isEmpty(v.Elem().Interface())
	}
	return reflect.DeepEqual(object, reflect.Zero(v.Type()).Interface())
}

func containsElement(container, element any) bool {
	cv := reflect.ValueOf(container)
	switch cv.Kind() {
	case reflect.String:
		es, ok := element.(string)
		return ok && strings.Contains(cv.String(), es)
	case reflect.Slice, reflect.Array:
		for i := 0; i < cv.Len(); i++ {
			if objectsEqual(cv.Index(i).Interface(), element) {
				return true
			}
		}
	case reflect.Map:
		for _, k := range cv.MapKeys() {
			if objectsEqual(k.Interface(), element) {
				return true
			}
		}
	}
	return false
}

// compareNumeric returns -1, 0, or +1 for any pair of integer or float
// values; mismatched kinds compare through float64.
func compareNumeric(x, y any) int {
	xf := toFloat(x)
	yf := toFloat(y)
	switch {
	case xf < yf:
		return -1
	case xf > yf:
		return 1
	}
	return 0
}

func toFloat(v any) float64 {
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return float64(rv.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return float64(rv.Uint())
	case reflect.Float32, reflect.Float64:
		return rv.Float()
	case reflect.Struct:
		// time.Duration is int64 underneath; structs are unsupported.
		return math.NaN()
	}
	return math.NaN()
}
