package testkit_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/testkit"
)

// TestHotPathAllocs is the runtime half of the allocation-budget
// contract: every kernel in the hot-path registry must run steady-state
// with zero allocations per op. The static half (the allocfree
// analyzer) proves the absence of allocating constructs; this test
// catches what escapes static reasoning — interface boxing in callees,
// escape-analysis regressions, scratch that silently stopped being
// recycled.
func TestHotPathAllocs(t *testing.T) {
	for _, hp := range testkit.HotPaths() {
		t.Run(hp.Name, func(t *testing.T) {
			op, err := hp.Setup()
			if err != nil {
				t.Fatalf("setup: %v", err)
			}
			// Warm lazily built scratch (free lists, offset tables)
			// before measuring; AllocsPerRun adds one more warm-up run
			// of its own.
			op()
			op()
			if allocs := testing.AllocsPerRun(100, op); allocs != 0 {
				t.Errorf("%s: %.1f allocs/op, want 0", hp.Name, allocs)
			}
		})
	}
}

// TestHotPathRegistryMatchesSeeds pins the runtime registry to the
// static one: the analyzer's seeded kernel set and the AllocsPerRun
// gate must cover exactly the same names, so adding a kernel to either
// side without the other fails here.
func TestHotPathRegistryMatchesSeeds(t *testing.T) {
	static := make(map[string]bool)
	for _, s := range analysis.HotPathSeeds {
		static[s.Kernel] = true
	}
	runtime := make(map[string]bool)
	for _, hp := range testkit.HotPaths() {
		if runtime[hp.Name] {
			t.Errorf("duplicate runtime registry entry %q", hp.Name)
		}
		runtime[hp.Name] = true
	}
	for name := range static {
		if !runtime[name] {
			t.Errorf("kernel %q is seeded in internal/analysis but has no runtime AllocsPerRun entry", name)
		}
	}
	for name := range runtime {
		if !static[name] {
			t.Errorf("kernel %q has a runtime AllocsPerRun entry but is not seeded in internal/analysis", name)
		}
	}
}

// TestHotPathGateDetectsAllocation is the negative control: the same
// measurement that passes for every registered kernel must flag an op
// that allocates. Together with the `unhoisted` fixture in
// internal/analysis/testdata/allocfree, this demonstrates that removing
// a scratch hoist trips both halves of the gate.
func TestHotPathGateDetectsAllocation(t *testing.T) {
	op := func() {
		allocSink = make([]complex64, 64)
	}
	if allocs := testing.AllocsPerRun(10, op); allocs == 0 {
		t.Fatal("AllocsPerRun reported 0 for a deliberately allocating op; the gate is not measuring")
	}
}

// allocSink forces the negative control's buffer to escape to the heap.
var allocSink []complex64
