package testkit

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dense"
	"repro/internal/precision"
	"repro/internal/tlr"
)

func TestGeneratorsDeterministic(t *testing.T) {
	a := Mat(NewRNG(42), 13, 9)
	b := Mat(NewRNG(42), 13, 9)
	if RelErrMat(a, b) != 0 {
		t.Fatal("Mat not deterministic for equal seeds")
	}
	va := Vec(NewRNG(7), 33)
	vb := Vec(NewRNG(7), 33)
	for i := range va {
		if va[i] != vb[i] {
			t.Fatal("Vec not deterministic for equal seeds")
		}
	}
	vc := Vec(NewRNG(8), 33)
	same := true
	for i := range va {
		if va[i] != vc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical vectors")
	}
}

func TestHilbertMatIsDataSparse(t *testing.T) {
	a := HilbertMat(48, 48)
	tm, err := tlr.Compress(a, tlr.Options{NB: 12, Tol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if tm.CompressionRatio() <= 1.5 {
		t.Errorf("Hilbert matrix should compress well, ratio %.2f", tm.CompressionRatio())
	}
	if e := dense.RelError(tm.Reconstruct(), a); e > 1e-3 {
		t.Errorf("Hilbert reconstruction error %g", e)
	}
}

func TestDecayMatCompressesBetterThanGaussian(t *testing.T) {
	rng := NewRNG(3)
	g, err := tlr.Compress(Mat(rng, 40, 40), tlr.Options{NB: 10, Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	d, err := tlr.Compress(DecayMat(rng, 40, 40, 0.5), tlr.Options{NB: 10, Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalRank() >= g.TotalRank() {
		t.Errorf("decay matrix rank %d not below Gaussian %d", d.TotalRank(), g.TotalRank())
	}
}

func TestRelErrMetric(t *testing.T) {
	if RelErr([]complex64{1, 2}, []complex64{1, 2}) != 0 {
		t.Error("equal vectors must have zero error")
	}
	if e := RelErr([]complex64{0, 0}, []complex64{3, 4}); math.Abs(e-1) > 1e-7 {
		t.Errorf("zero vs (3,4) should be relErr 1, got %g", e)
	}
	// zero want falls back to absolute norm
	if e := RelErr([]complex64{3, 4}, []complex64{0, 0}); math.Abs(e-5) > 1e-6 {
		t.Errorf("absolute fallback wrong: %g", e)
	}
}

func TestULPDist(t *testing.T) {
	if ULPDist(1+1i, 1+1i) != 0 {
		t.Error("identical values must be 0 ULPs apart")
	}
	next := math.Float32frombits(math.Float32bits(1) + 1)
	if d := ULPDist(complex(next, 0), 1); d != 1 {
		t.Errorf("adjacent floats are %d ULPs apart, want 1", d)
	}
	// sign-crossing distance: -0 and +0 are 0 apart
	if d := ULPDist(complex(float32(math.Copysign(0, -1)), 0), 0); d != 0 {
		t.Errorf("-0 vs +0 = %d ULPs", d)
	}
	if ULPDist(complex(float32(math.NaN()), 0), 1) != math.MaxUint32 {
		t.Error("NaN distance must saturate")
	}
	got := []complex64{1, complex(next, 0)}
	want := []complex64{1, 1}
	if MaxULPDist(got, want) != 1 {
		t.Error("MaxULPDist wrong")
	}
}

func TestToleranceMonotone(t *testing.T) {
	// looser compression and lower precision must widen the budget
	if MVMTolerance(64, 1e-2, precision.FP32) <= MVMTolerance(64, 1e-4, precision.FP32) {
		t.Error("tolerance not monotone in acc")
	}
	if MVMTolerance(64, 1e-4, precision.BF16) <= MVMTolerance(64, 1e-4, precision.FP16) {
		t.Error("bf16 budget must exceed fp16")
	}
	if MVMTolerance(64, 1e-4, precision.FP16) <= MVMTolerance(64, 1e-4, precision.FP32) {
		t.Error("fp16 budget must exceed fp32")
	}
}

func TestAdjointGapDetectsBrokenAdjoint(t *testing.T) {
	rng := NewRNG(5)
	a := Mat(rng, 12, 9)
	good := &implOperator{m: 12, n: 9, impl: Impl{
		Apply:   func(x, y []complex64) error { a.MulVec(x, y); return nil },
		Adjoint: a.MulVecConjTrans,
	}}
	if g := AdjointGap(good, NewRNG(1), 4); g > 1e-4 {
		t.Errorf("correct adjoint has gap %g", g)
	}
	// broken adjoint: unconjugated transpose instead of Hermitian
	at := a.ConjTranspose()
	bad := &implOperator{m: 12, n: 9, impl: Impl{
		Apply: func(x, y []complex64) error { a.MulVec(x, y); return nil },
		Adjoint: func(x, y []complex64) {
			at.MulVec(x, y)
			for i := range y {
				y[i] = complex(real(y[i]), -imag(y[i])) // conj(Aᴴx) = Aᵀ conj(x): wrong
			}
		},
	}}
	if g := AdjointGap(bad, NewRNG(1), 4); g < 1e-2 {
		t.Errorf("broken adjoint not detected, gap %g", g)
	}
}

func oracleCase(t *testing.T, a *dense.Matrix, cfg Config) *Oracle {
	t.Helper()
	o, err := New(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestOracleGaussian(t *testing.T) {
	a := Mat(NewRNG(11), 40, 40)
	o := oracleCase(t, a, Config{TLROpts: tlr.Options{NB: 10, Tol: 1e-4}})
	if err := o.CompressionHolds(); err != nil {
		t.Fatal(err)
	}
	if err := o.Check(NewRNG(12), 3); err != nil {
		t.Fatal(err)
	}
	if len(o.Impls) < 5 {
		t.Fatalf("oracle must exercise >= 5 implementations, has %d", len(o.Impls))
	}
}

func TestOracleDecayWithPrecision(t *testing.T) {
	a := DecayMat(NewRNG(13), 50, 40, 0.6)
	o := oracleCase(t, a, Config{
		TLROpts:    tlr.Options{NB: 10, Tol: 1e-3},
		Format:     precision.FP16,
		StackWidth: 6,
	})
	if err := o.Check(NewRNG(14), 3); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, im := range o.Impls {
		if strings.HasPrefix(im.Name, "precision-") {
			found = true
		}
	}
	if !found {
		t.Fatal("FP16 config must add a precision implementation")
	}
}

func TestOracleSeismicSlice(t *testing.T) {
	a, err := SeismicSlice(4)
	if err != nil {
		t.Fatal(err)
	}
	o := oracleCase(t, a, Config{TLROpts: tlr.Options{NB: 8, Tol: 1e-4}})
	if err := o.Check(NewRNG(15), 2); err != nil {
		t.Fatal(err)
	}
}

// TestOracleDetectsOverTruncation breaks the compression by capping every
// tile at rank 1 while claiming a 1e-6 accuracy: the tolerance derived
// from the claimed acc cannot absorb the real error, so Check must fail.
// This is the guarantee that later performance PRs cannot silently trade
// accuracy away.
func TestOracleDetectsOverTruncation(t *testing.T) {
	a := Mat(NewRNG(21), 40, 40)
	o := oracleCase(t, a, Config{TLROpts: tlr.Options{NB: 10, Tol: 1e-6, MaxRank: 1}})
	if err := o.Check(NewRNG(22), 2); err == nil {
		t.Fatal("oracle accepted a rank-1 truncation of a full-rank matrix")
	}
}

// TestOracleDetectsCorruptedTile zeroes one tile's U base after
// compression — the kind of drift a buggy sharding or caching layer could
// introduce — and requires the oracle to notice.
func TestOracleDetectsCorruptedTile(t *testing.T) {
	a := Mat(NewRNG(23), 40, 40)
	o := oracleCase(t, a, Config{TLROpts: tlr.Options{NB: 10, Tol: 1e-4}})
	u := o.T.Tile(1, 1).U
	for i := range u.Data {
		u.Data[i] = 0
	}
	if err := o.Check(NewRNG(24), 2); err == nil {
		t.Fatal("oracle accepted a corrupted tile")
	}
}

func TestSeismicBand(t *testing.T) {
	mats, err := SeismicBand(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(mats) != 3 {
		t.Fatalf("want 3 matrices, got %d", len(mats))
	}
	for _, m := range mats {
		if m.Rows == 0 || m.Cols == 0 || m.FrobNorm() == 0 {
			t.Fatal("degenerate seismic slice")
		}
	}
}
