package testkit

import (
	"math"
	"math/rand"

	"repro/internal/cfloat"
	"repro/internal/dense"
	"repro/internal/precision"
)

// RelErr returns ‖got − want‖₂ / ‖want‖₂ over complex vectors (the metric
// formerly duplicated as relErr in the lsqr and cgls tests). A zero want
// falls back to the absolute norm of the difference.
func RelErr(got, want []complex64) float64 {
	if len(got) != len(want) {
		panic("testkit: RelErr length mismatch")
	}
	d := make([]complex64, len(got))
	for i := range d {
		d[i] = got[i] - want[i]
	}
	nw := cfloat.Nrm2(want)
	if nw == 0 {
		return cfloat.Nrm2(d)
	}
	return cfloat.Nrm2(d) / nw
}

// RelErrMat returns ‖A−B‖F / ‖B‖F, the tile-accuracy measure acc of the
// paper, over dense matrices.
func RelErrMat(got, want *dense.Matrix) float64 {
	return dense.RelError(got, want)
}

// MaxAbsDiff returns the largest elementwise modulus of got − want.
func MaxAbsDiff(got, want []complex64) float64 {
	if len(got) != len(want) {
		panic("testkit: MaxAbsDiff length mismatch")
	}
	var m float64
	for i := range got {
		d := got[i] - want[i]
		if x := math.Hypot(float64(real(d)), float64(imag(d))); x > m {
			m = x
		}
	}
	return m
}

// ulpDist32 returns the distance in representable float32 values between
// a and b, treating the floats as a continuum ordered by their sign-
// magnitude encoding. NaN against anything is MaxUint32.
func ulpDist32(a, b float32) uint32 {
	if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
		return math.MaxUint32
	}
	// map the float bits onto a monotone integer scale
	toOrd := func(f float32) int64 {
		u := math.Float32bits(f)
		if u&0x80000000 != 0 {
			return -int64(u & 0x7FFFFFFF)
		}
		return int64(u)
	}
	d := toOrd(a) - toOrd(b)
	if d < 0 {
		d = -d
	}
	if d > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(d)
}

// ULPDist returns the complex64 ULP distance between a and b: the larger
// of the real-part and imaginary-part float32 ULP distances.
func ULPDist(a, b complex64) uint32 {
	re := ulpDist32(real(a), real(b))
	im := ulpDist32(imag(a), imag(b))
	if im > re {
		return im
	}
	return re
}

// MaxULPDist returns the largest elementwise ULPDist over two vectors.
func MaxULPDist(got, want []complex64) uint32 {
	if len(got) != len(want) {
		panic("testkit: MaxULPDist length mismatch")
	}
	var m uint32
	for i := range got {
		if d := ULPDist(got[i], want[i]); d > m {
			m = d
		}
	}
	return m
}

// FormatEps returns the unit roundoff of a storage format: the relative
// precision a value survives a round trip through that format with.
func FormatEps(f precision.Format) float64 {
	switch f {
	case precision.FP16:
		return math.Ldexp(1, -11)
	case precision.BF16:
		return math.Ldexp(1, -8)
	default:
		return math.Ldexp(1, -24)
	}
}

// MVMTolerance derives the relative-error budget for comparing a
// compressed MVM against the dense reference (§5's accuracy-versus-
// compression tradeoff):
//
//	tol = C · (acc + (eps_fmt + eps_fp32)·√n)
//
// acc bounds the per-tile compression error (which the Frobenius-norm
// analysis carries to the full matrix), the eps·√n terms bound the
// accumulated rounding of n-length float32 reductions at the storage and
// compute precisions, and C = 8 is a safety factor absorbing the gap
// between norm-wise analysis and the realized random-vector error.
func MVMTolerance(n int, acc float64, f precision.Format) float64 {
	eps32 := math.Ldexp(1, -24)
	return 8 * (acc + (FormatEps(f)+eps32)*math.Sqrt(float64(n)))
}

// ExecTolerance bounds the disagreement between two implementations of
// the SAME compressed operator that differ only in float summation order
// (sequential vs parallel vs batched vs the wsesim four-real-MVM path):
// a multiple of fp32 roundoff growing with the reduction length.
func ExecTolerance(n int) float64 {
	eps32 := math.Ldexp(1, -24)
	return 64 * eps32 * math.Sqrt(float64(n)+1)
}

// Operator is the structural shape of a matrix-free complex linear map,
// matching lsqr.Operator without importing it (so solver tests can stay
// in internal test packages while testkit remains import-cycle-free).
type Operator interface {
	Rows() int
	Cols() int
	Apply(x, y []complex64)
	ApplyAdjoint(x, y []complex64)
}

// AdjointGap measures the worst normalized violation of the adjoint
// identity ⟨Ax, y⟩ = ⟨x, Aᴴy⟩ over trials random vector pairs — the
// invariant LSQR and CGLS silently depend on; a forward/adjoint mismatch
// makes them diverge without crashing.
func AdjointGap(op Operator, rng *rand.Rand, trials int) float64 {
	m, n := op.Rows(), op.Cols()
	var worst float64
	ax := make([]complex64, m)
	aty := make([]complex64, n)
	for t := 0; t < trials; t++ {
		x := Vec(rng, n)
		y := Vec(rng, m)
		op.Apply(x, ax)
		op.ApplyAdjoint(y, aty)
		lhs := cfloat.Dotc(y, ax)  // ⟨y, Ax⟩
		rhs := cfloat.Dotc(aty, x) // ⟨Aᴴy, x⟩
		num := math.Hypot(float64(real(lhs-rhs)), float64(imag(lhs-rhs)))
		den := math.Hypot(float64(real(lhs)), float64(imag(lhs))) + 1
		if g := num / den; g > worst {
			worst = g
		}
	}
	return worst
}
