package ranks

import (
	"math"
	"sync"
	"testing"
)

// paperDist caches calibrated paper-scale distributions across tests —
// the nb=25 layouts take ~1 s each to build.
var (
	paperMu    sync.Mutex
	paperCache = map[Config]*Distribution{}
)

func paperDist(t testing.TB, cfg Config) *Distribution {
	t.Helper()
	paperMu.Lock()
	defer paperMu.Unlock()
	if d, ok := paperCache[cfg]; ok {
		return d
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("%v: %v", cfg, err)
	}
	paperCache[cfg] = d
	return d
}

func TestPaperDenseBytes(t *testing.T) {
	// §6.1: 230 matrices of 26040×15930 complex64 ≈ 763 GB
	gb := float64(PaperDenseBytes) / 1e9
	if gb < 760 || gb < 0 || gb > 767 {
		t.Errorf("dense dataset %g GB, paper says ≈763", gb)
	}
}

func TestCalibrationHitsFig12Totals(t *testing.T) {
	// Every published configuration must calibrate to within 2% of its
	// Fig. 12 aggregate size.
	for cfg, want := range Fig12TotalBytes {
		d := paperDist(t, cfg)
		got := d.TotalBytes()
		rel := math.Abs(float64(got-want)) / float64(want)
		if rel > 0.02 {
			t.Errorf("%v: modelled %g GB vs published %g GB (%.1f%%)",
				cfg, float64(got)/1e9, float64(want)/1e9, rel*100)
		}
	}
}

func TestCompressionRatioNearSevenX(t *testing.T) {
	// §6.1: 7X compression at acc=1e-4
	d := paperDist(t, Config{NB: 70, Acc: 1e-4})
	r := d.CompressionRatio()
	if r < 6 || r > 8 {
		t.Errorf("compression ratio %g, want ≈7", r)
	}
}

func TestRanksDecayFromDiagonal(t *testing.T) {
	d, err := NewCustom(Params{NB: 16, Rows: 320, Cols: 320, NumFreqs: 10, TargetBytes: 2e6})
	if err != nil {
		t.Fatal(err)
	}
	f := d.NumFreqs - 1
	onDiag := d.Rank(f, 5, 5)
	offDiag := d.Rank(f, 5, d.NT-1)
	if offDiag > onDiag {
		t.Errorf("rank grows away from diagonal: %d vs %d", offDiag, onDiag)
	}
	if onDiag < 1 {
		t.Error("diagonal tiles should have positive rank")
	}
}

func TestRanksGrowWithFrequency(t *testing.T) {
	// Fig. 12 bottom: size per frequency matrix rises with frequency
	d := paperDist(t, Config{NB: 50, Acc: 1e-4})
	bpf := d.BytesPerFrequency()
	if len(bpf) != PaperFreqs {
		t.Fatalf("got %d frequencies", len(bpf))
	}
	if bpf[0] >= bpf[len(bpf)-1] {
		t.Errorf("per-frequency size not rising: %d → %d", bpf[0], bpf[len(bpf)-1])
	}
	// the sum must be the total
	var sum int64
	for _, b := range bpf {
		sum += b
	}
	if sum != d.TotalBytes() {
		t.Errorf("per-frequency sizes sum to %d, total %d", sum, d.TotalBytes())
	}
}

func TestRankClamping(t *testing.T) {
	d, err := NewCustom(Params{NB: 4, Rows: 64, Cols: 64, NumFreqs: 3, TargetBytes: 150000})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 3; f++ {
		for i := 0; i < d.MT; i++ {
			for j := 0; j < d.NT; j++ {
				r := d.Rank(f, i, j)
				if r < 0 || r > 4 {
					t.Fatalf("rank %d out of [0,4]", r)
				}
			}
		}
	}
}

func TestStackedHeightsConsistent(t *testing.T) {
	d, err := NewCustom(Params{NB: 8, Rows: 128, Cols: 96, NumFreqs: 5, TargetBytes: 600000})
	if err != nil {
		t.Fatal(err)
	}
	sv := d.StackedColumnHeights()
	var total int64
	for f := range sv {
		if len(sv[f]) != d.NT {
			t.Fatal("wrong column count")
		}
		for j, s := range sv[f] {
			// must equal the direct sum of Rank
			var want int
			for i := 0; i < d.MT; i++ {
				want += d.Rank(f, i, j)
			}
			if s != want {
				t.Fatalf("Sv[%d][%d] = %d, direct sum %d", f, j, s, want)
			}
			total += int64(s)
		}
	}
	if total != d.TotalRankRows() {
		t.Error("TotalRankRows inconsistent")
	}
}

func TestPaperStackWidthsReproduceTable1PEs(t *testing.T) {
	// Table 1: with the published stack widths on 6 systems, the chunk
	// count (= PEs used under strategy 1) must land close to the
	// published PE counts and inside the 6-system budget.
	cases := []struct {
		cfg     Config
		sw      int
		paperPE int64
	}{
		{Config{25, 1e-4}, 64, 4417690},
		{Config{50, 1e-4}, 32, 4330150},
		{Config{70, 1e-4}, 23, 4416383},
		{Config{50, 3e-4}, 18, 4445947},
		{Config{70, 3e-4}, 14, 4252877},
	}
	budget := int64(6 * 745500)
	for _, c := range cases {
		d := paperDist(t, c.cfg)
		chunks, worst := d.Chunks(c.sw)
		rel := math.Abs(float64(chunks-c.paperPE)) / float64(c.paperPE)
		if rel > 0.10 {
			t.Errorf("%v sw=%d: %d chunks vs paper %d PEs (%.1f%%)",
				c.cfg, c.sw, chunks, c.paperPE, rel*100)
		}
		if chunks > budget {
			t.Errorf("%v sw=%d: %d chunks exceed 6-system budget %d", c.cfg, c.sw, chunks, budget)
		}
		if worst != c.sw {
			t.Errorf("%v: worst chunk %d, want full %d", c.cfg, worst, c.sw)
		}
	}
}

func TestStackWidthForBudget(t *testing.T) {
	d, err := NewCustom(Params{NB: 8, Rows: 256, Cols: 256, NumFreqs: 4, TargetBytes: 3e6})
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(500)
	sw := d.StackWidthFor(budget)
	n, _ := d.Chunks(sw)
	if n > budget {
		t.Errorf("sw=%d gives %d chunks over budget %d", sw, n, budget)
	}
	if sw > 1 {
		n2, _ := d.Chunks(sw - 1)
		if n2 <= budget {
			t.Errorf("sw-1=%d also fits (%d chunks): not minimal", sw-1, n2)
		}
	}
}

func TestNewCustomValidation(t *testing.T) {
	if _, err := NewCustom(Params{NB: 0, Rows: 1, Cols: 1, NumFreqs: 1, TargetBytes: 1}); err == nil {
		t.Error("NB=0 should fail")
	}
	if _, err := NewCustom(Params{NB: 4, Rows: 8, Cols: 8, NumFreqs: 1, TargetBytes: 0}); err == nil {
		t.Error("zero target should fail")
	}
	// unreachable target: more bytes than full rank allows
	if _, err := NewCustom(Params{NB: 4, Rows: 8, Cols: 8, NumFreqs: 1, TargetBytes: 1 << 40}); err == nil {
		t.Error("unreachable target should fail")
	}
}

func TestUnknownConfig(t *testing.T) {
	if _, err := New(Config{NB: 33, Acc: 1e-4}); err == nil {
		t.Error("unknown config should fail")
	}
}

func TestConfigString(t *testing.T) {
	s := Config{NB: 25, Acc: 1e-4}.String()
	if s != "nb=25 acc=1e-04" {
		t.Errorf("String = %q", s)
	}
}

func BenchmarkCalibratePaperNB70(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := New(Config{NB: 70, Acc: 1e-4}); err != nil {
			b.Fatal(err)
		}
	}
}
