// Package ranks models the tile-rank structure of the paper's full-scale
// compressed dataset. We cannot materialize the 763 GB of frequency
// matrices, but every paper-scale performance number depends only on the
// *rank layout* — how many rank-rows each tile column stacks, hence how
// many bytes and FMACs each PE executes. This package generates that
// layout from a distance-decay model of post-Hilbert-sort tile ranks
// (energy concentrates near the tile diagonal, ranks grow with frequency)
// and calibrates a single scale factor per configuration so the aggregate
// compressed size matches the totals published in Fig. 12.
package ranks

import (
	"fmt"
	"math"
)

// Paper-scale dataset constants (§6.1).
const (
	// PaperRows is the source count of each frequency matrix (217×120).
	PaperRows = 26040
	// PaperCols is the receiver count (177×90).
	PaperCols = 15930
	// PaperFreqs is the number of stored frequency matrices.
	PaperFreqs = 230
	// PaperDenseBytes is the dense dataset size (≈763 GB).
	PaperDenseBytes = int64(PaperRows) * int64(PaperCols) * 8 * PaperFreqs
)

// Config identifies a (tile size, accuracy) compression configuration.
type Config struct {
	NB  int
	Acc float64
}

func (c Config) String() string { return fmt.Sprintf("nb=%d acc=%.0e", c.NB, c.Acc) }

// Fig12TotalBytes maps every configuration of Fig. 12 to its published
// aggregate compressed size.
var Fig12TotalBytes = map[Config]int64{
	{25, 1e-4}: 110e9, {25, 3e-4}: 67e9, {25, 5e-4}: 59e9, {25, 7e-4}: 57e9,
	{50, 1e-4}: 109e9, {50, 3e-4}: 63e9, {50, 5e-4}: 47e9, {50, 7e-4}: 39e9,
	{70, 1e-4}: 112e9, {70, 3e-4}: 66e9, {70, 5e-4}: 49e9, {70, 7e-4}: 40e9,
}

// Params configures a rank-distribution model.
type Params struct {
	// NB is the tile size.
	NB int
	// Rows, Cols, NumFreqs give the matrix stack extents.
	Rows, Cols, NumFreqs int
	// TargetBytes is the aggregate compressed size to calibrate to.
	TargetBytes int64
	// DecayLength is the e-folding distance (in normalized diagonal
	// offset) of the post-Hilbert rank decay (default 0.10).
	DecayLength float64
	// FreqFloor is the rank fraction retained at zero frequency relative
	// to the top of the band (default 0.25): ranks grow with frequency as
	// Fig. 12's per-frequency size curves show.
	FreqFloor float64
}

// Distribution is a calibrated rank layout.
type Distribution struct {
	Params
	// MT, NT are the tile-grid extents.
	MT, NT int
	// Lambda is the calibrated scale factor.
	Lambda float64
	// stacked[f][j] caches Σ_i rank(f,i,j) per tile column, built lazily.
	stacked [][]int
	// totalRankRows caches Σ ranks over every tile and frequency.
	totalRankRows int64
	// totalNonzeroTiles caches the number of tiles with rank > 0.
	totalNonzeroTiles int64
	// nonzeroColumns caches the number of (f, j) columns with Sv > 0.
	nonzeroColumns int64
}

// New builds the paper-scale distribution for a Fig. 12 configuration.
func New(cfg Config) (*Distribution, error) {
	target, ok := Fig12TotalBytes[cfg]
	if !ok {
		return nil, fmt.Errorf("ranks: no Fig. 12 total for %v", cfg)
	}
	return NewCustom(Params{
		NB: cfg.NB, Rows: PaperRows, Cols: PaperCols, NumFreqs: PaperFreqs,
		TargetBytes: target,
	})
}

// NewCustom builds a distribution with explicit parameters, used for
// scaled-down tests and ablations.
func NewCustom(p Params) (*Distribution, error) {
	if p.NB <= 0 || p.Rows <= 0 || p.Cols <= 0 || p.NumFreqs <= 0 {
		return nil, fmt.Errorf("ranks: nonpositive extent in %+v", p)
	}
	if p.TargetBytes <= 0 {
		return nil, fmt.Errorf("ranks: nonpositive target size")
	}
	if p.DecayLength == 0 {
		p.DecayLength = 0.10
	}
	if p.FreqFloor == 0 {
		p.FreqFloor = 0.25
	}
	d := &Distribution{
		Params: p,
		MT:     (p.Rows + p.NB - 1) / p.NB,
		NT:     (p.Cols + p.NB - 1) / p.NB,
	}
	if err := d.calibrate(); err != nil {
		return nil, err
	}
	return d, nil
}

// freqShape returns the relative rank scale of frequency index f.
func (d *Distribution) freqShape(f int) float64 {
	if d.NumFreqs == 1 {
		return 1
	}
	x := float64(f) / float64(d.NumFreqs-1)
	return d.FreqFloor + (1-d.FreqFloor)*x
}

// diagDistance returns the normalized diagonal offset of tile (i, j).
func (d *Distribution) diagDistance(i, j int) float64 {
	return math.Abs(float64(i)/float64(d.MT) - float64(j)/float64(d.NT))
}

// Rank returns the modelled rank of tile (i, j) at frequency f.
func (d *Distribution) Rank(f, i, j int) int {
	g := math.Exp(-d.diagDistance(i, j) / d.DecayLength)
	r := int(math.Round(d.Lambda * d.freqShape(f) * g))
	if r < 0 {
		r = 0
	}
	if r > d.NB {
		r = d.NB
	}
	return r
}

// calibrate bisects Lambda so the aggregate compressed size matches
// TargetBytes. Each rank-row stores NB complex64 elements in both its U
// and V base: bytes = 16·NB·Σranks. For speed, the diagonal-offset values
// are histogrammed once (they depend only on (i, j)).
func (d *Distribution) calibrate() error {
	const bins = 2048
	hist := make([]int64, bins)
	maxD := 0.0
	for i := 0; i < d.MT; i++ {
		for j := 0; j < d.NT; j++ {
			if dd := d.diagDistance(i, j); dd > maxD {
				maxD = dd
			}
		}
	}
	if maxD == 0 {
		maxD = 1
	}
	for i := 0; i < d.MT; i++ {
		for j := 0; j < d.NT; j++ {
			b := int(d.diagDistance(i, j) / maxD * float64(bins-1))
			hist[b]++
		}
	}
	gOf := func(b int) float64 {
		dd := float64(b) / float64(bins-1) * maxD
		return math.Exp(-dd / d.DecayLength)
	}
	totalFor := func(lambda float64) int64 {
		var rows int64
		for f := 0; f < d.NumFreqs; f++ {
			s := lambda * d.freqShape(f)
			for b := 0; b < bins; b++ {
				if hist[b] == 0 {
					continue
				}
				r := int64(math.Round(s * gOf(b)))
				if r < 0 {
					r = 0
				}
				if r > int64(d.NB) {
					r = int64(d.NB)
				}
				rows += r * hist[b]
			}
		}
		return rows * 16 * int64(d.NB)
	}
	// hi must drive even the farthest, lowest-frequency tile to full rank
	// so the bisection can reach the full-rank ceiling.
	gMin := math.Exp(-maxD / d.DecayLength)
	lo, hi := 1e-9, 2*float64(d.NB)/(d.FreqFloor*gMin)
	if totalFor(hi) < d.TargetBytes {
		return fmt.Errorf("ranks: target %d B unreachable (max %d B)", d.TargetBytes, totalFor(hi))
	}
	for it := 0; it < 80; it++ {
		mid := (lo + hi) / 2
		if totalFor(mid) < d.TargetBytes {
			lo = mid
		} else {
			hi = mid
		}
	}
	d.Lambda = (lo + hi) / 2
	return nil
}

// StackedColumnHeights returns Sv[f][j] = Σ_i rank(f, i, j): the height of
// the stacked V base (and width of the side-by-side U base) of tile column
// j at frequency f — the quantity the CS-2 mapping splits into stack-width
// chunks. The result is computed once and cached.
func (d *Distribution) StackedColumnHeights() [][]int {
	if d.stacked != nil {
		return d.stacked
	}
	// Precompute the per-tile decay factors once; the frequency loop then
	// only scales and rounds (the mt×nt×nf product reaches 1.5e8 at paper
	// scale, so the exp() must stay out of the inner loop).
	g := make([]float64, d.MT*d.NT)
	for j := 0; j < d.NT; j++ {
		for i := 0; i < d.MT; i++ {
			g[j*d.MT+i] = math.Exp(-d.diagDistance(i, j) / d.DecayLength)
		}
	}
	out := make([][]int, d.NumFreqs)
	var total, nzTiles, nzCols int64
	for f := 0; f < d.NumFreqs; f++ {
		row := make([]int, d.NT)
		s := d.Lambda * d.freqShape(f)
		for j := 0; j < d.NT; j++ {
			var sum, nz int
			col := g[j*d.MT : (j+1)*d.MT]
			for _, gij := range col {
				r := int(s*gij + 0.5)
				if r > d.NB {
					r = d.NB
				}
				sum += r
				if r > 0 {
					nz++
				}
			}
			row[j] = sum
			total += int64(sum)
			nzTiles += int64(nz)
			if sum > 0 {
				nzCols++
			}
		}
		out[f] = row
	}
	d.stacked = out
	d.totalRankRows = total
	d.totalNonzeroTiles = nzTiles
	d.nonzeroColumns = nzCols
	return out
}

// TotalRankRows returns Σ ranks over all tiles and frequencies.
func (d *Distribution) TotalRankRows() int64 {
	d.StackedColumnHeights()
	return d.totalRankRows
}

// TotalNonzeroTiles returns the number of tiles with positive rank — the
// number of per-tile U MVM segments the TLR-MVM executes.
func (d *Distribution) TotalNonzeroTiles() int64 {
	d.StackedColumnHeights()
	return d.totalNonzeroTiles
}

// NonzeroColumns returns the number of (frequency, tile-column) pairs with
// positive stacked height.
func (d *Distribution) NonzeroColumns() int64 {
	d.StackedColumnHeights()
	return d.nonzeroColumns
}

// MeanTileRank returns the average rank over nonzero tiles.
func (d *Distribution) MeanTileRank() float64 {
	if d.TotalNonzeroTiles() == 0 {
		return 0
	}
	return float64(d.TotalRankRows()) / float64(d.TotalNonzeroTiles())
}

// TotalBytes returns the modelled compressed size (16·NB bytes per
// rank-row: U and V bases in complex64).
func (d *Distribution) TotalBytes() int64 {
	return 16 * int64(d.NB) * d.TotalRankRows()
}

// BytesPerFrequency returns the compressed size of each frequency matrix,
// reproducing the rising curves of Fig. 12's bottom panel.
func (d *Distribution) BytesPerFrequency() []int64 {
	sv := d.StackedColumnHeights()
	out := make([]int64, d.NumFreqs)
	for f := range sv {
		var rows int64
		for _, s := range sv[f] {
			rows += int64(s)
		}
		out[f] = rows * 16 * int64(d.NB)
	}
	return out
}

// CompressionRatio returns dense/compressed for the modelled layout.
func (d *Distribution) CompressionRatio() float64 {
	dense := int64(d.Rows) * int64(d.Cols) * 8 * int64(d.NumFreqs)
	return float64(dense) / float64(d.TotalBytes())
}

// Chunks returns the number of stack-width chunks (= PEs used under strong
// scaling strategy 1, where one PE runs all eight real MVMs of a chunk)
// and the worst (largest) chunk height.
func (d *Distribution) Chunks(sw int) (numChunks int64, worstRows int) {
	if sw <= 0 {
		panic("ranks: nonpositive stack width")
	}
	sv := d.StackedColumnHeights()
	for f := range sv {
		for _, s := range sv[f] {
			if s == 0 {
				continue
			}
			numChunks += int64((s + sw - 1) / sw)
			if s >= sw {
				worstRows = sw
			} else if s > worstRows {
				worstRows = s
			}
		}
	}
	return numChunks, worstRows
}

// StackWidthFor returns the smallest stack width whose chunk count fits
// the given PE budget — the paper's rule of choosing sw so each shard
// "nearly fills all PEs" (Table 1).
func (d *Distribution) StackWidthFor(peBudget int64) int {
	for sw := 1; sw <= d.NB*d.MT; sw++ {
		n, _ := d.Chunks(sw)
		if n <= peBudget {
			return sw
		}
	}
	return d.NB * d.MT
}
