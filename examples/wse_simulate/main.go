// WSE functional simulation: builds the communication-avoiding TLR-MVM
// layout for one real frequency matrix on a simulated PE grid, executes
// every PE's eight real MVMs, validates the reduced result against the
// reference TLR-MVM, and reports the executed memory traffic next to the
// analytic §6.6 formulas — the deepest of the examples.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/cfloat"
	"repro/internal/cs2"
	"repro/internal/dense"
	"repro/internal/seismic"
	"repro/internal/sfc"
	"repro/internal/tlr"
	"repro/internal/wsesim"
)

func main() {
	// A real Hilbert-sorted frequency matrix from the synthetic survey.
	ds, err := seismic.Generate(seismic.Options{
		Geom: seismic.Geometry{
			NsX: 16, NsY: 10, NrX: 14, NrY: 8,
			Dx: 20, Dy: 20, SrcDepth: 10, RecDepth: 300,
		},
		Wavelet: seismic.FlatWavelet{Fmax: 30},
		Nt:      256, Dt: 0.004,
	})
	if err != nil {
		log.Fatal(err)
	}
	hds, _ := ds.Reorder(sfc.Hilbert)
	k := hds.K[hds.NumFreqs()/2]
	tm, err := tlr.Compress(k, tlr.Options{NB: 20, Tol: 1e-3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frequency matrix %dx%d → %s\n", k.Rows, k.Cols, tm)

	const sw = 12
	mach, err := wsesim.Build(tm, sw, cs2.DefaultArch())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("layout: stack width %d → %d PEs, worst SRAM image %d B of %d B\n",
		sw, mach.NumPEs(), mach.WorstSRAM(), cs2.DefaultArch().SRAMBytes)

	rng := rand.New(rand.NewSource(1))
	x := dense.Random(rng, k.Cols, 1).Data
	ySim := make([]complex64, k.Rows)
	mach.MulVec(x, ySim)
	yRef := make([]complex64, k.Rows)
	tm.MulVec(x, yRef)
	diff := make([]complex64, k.Rows)
	for i := range diff {
		diff[i] = ySim[i] - yRef[i]
	}
	fmt.Printf("simulated vs reference TLR-MVM relative error: %.3g\n",
		cfloat.Nrm2(diff)/cfloat.Nrm2(yRef))

	meter := mach.TotalMeter()
	fmt.Printf("executed traffic: %.3f MB (%.3f MB reads, %.3f MB writes), %d FMACs\n",
		float64(meter.Bytes())/1e6, float64(meter.Reads)/1e6,
		float64(meter.Writes)/1e6, meter.FMACs)
	fmt.Printf("modelled worst-chunk cycles: %d (%.2f us at 850 MHz)\n",
		mach.ModelCycles(), float64(mach.ModelCycles())/850e6*1e6)

	// bandwidth this single matrix would sustain on the wafer
	arch := cs2.DefaultArch()
	bw := arch.Bandwidth(meter.Bytes(), mach.ModelCycles())
	fmt.Printf("absolute bandwidth at this layout's worst cycle: %.2f TB/s (one matrix, %d PEs)\n",
		bw/1e12, mach.NumPEs())

	// §6.5 bank placement: every chunk's arrays must admit a dual-read-
	// safe assignment to the eight 6 kB banks
	conflicts := 0
	for _, pe := range mach.PEs {
		plan, err := pe.PlanBanks(arch)
		if err != nil {
			log.Fatal(err)
		}
		if err := plan.Verify(); err != nil {
			conflicts++
		}
	}
	fmt.Printf("bank placement: %d/%d PEs conflict-free (matrix and accumulator in distinct banks)\n",
		mach.NumPEs()-conflicts, mach.NumPEs())

	// §6.7 strategy 2: scatter each chunk's eight real MVMs over 8 PEs
	s2 := mach.Strategy2()
	fmt.Printf("strategy 2: %d PEs, worst single-MVM cycles %d (vs %d for the full chunk), base memory x%.0f\n",
		s2.PEs, s2.WorstCycles, mach.ModelCycles(), s2.BaseReplication)
}
