// CS-2 strong scaling: evaluates the wafer-scale-engine machine model on
// the paper-scale rank layout, sweeping shard counts under both
// strong-scaling strategies of §6.7 — the experiment behind Tables 4/5
// and the 92.58 PB/s headline.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ranks"
	"repro/internal/wse"
)

func main() {
	cfg := ranks.Config{NB: 70, Acc: 1e-4}
	fmt.Printf("calibrating the %v rank layout to Fig. 12's %g GB total...\n",
		cfg, float64(ranks.Fig12TotalBytes[cfg])/1e9)
	dist, err := ranks.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("layout: %d x %d tiles x %d frequencies, %.1f GB compressed (%.1fx), mean tile rank %.1f\n",
		dist.MT, dist.NT, dist.NumFreqs, float64(dist.TotalBytes())/1e9,
		dist.CompressionRatio(), dist.MeanTileRank())

	fmt.Println("\nstrategy 1 (split stack width):")
	fmt.Printf("%8s %6s %14s %16s %12s\n", "systems", "sw", "rel BW (PB/s)", "abs BW (PB/s)", "occupancy")
	for _, systems := range []int{6, 12, 24} {
		// StackWidth 0 auto-fits the smallest chunk height whose chunk
		// count fills the system budget (the Table 1 rule)
		m, err := core.RunCS2WithDistribution(dist, core.CS2Options{
			NB: 70, Acc: 1e-4, Systems: systems, Strategy: wse.Strategy1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %6d %14.2f %16.2f %11.0f%%\n",
			systems, m.StackWidth, m.RelativeBW/1e15, m.AbsoluteBW/1e15, m.Occupancy*100)
	}

	fmt.Println("\nstrategy 2 (scatter the 8 real MVMs over 8 PEs) — the 48-system headline:")
	m, err := core.RunCS2WithDistribution(dist, core.CS2Options{
		NB: 70, Acc: 1e-4, StackWidth: 23, Systems: 48, Strategy: wse.Strategy2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d PEs across 48 CS-2 systems (paper: 35,784,000)\n", m.PEsUsed)
	fmt.Printf("  relative sustained bandwidth: %.2f PB/s (paper: 92.58)\n", m.RelativeBW/1e15)
	fmt.Printf("  absolute sustained bandwidth: %.2f PB/s (paper: 245.59)\n", m.AbsoluteBW/1e15)
	fmt.Printf("  flop rate: %.2f PFlop/s (paper: 37.95)\n", m.FlopRate/1e15)
	fmt.Printf("  kernel time: %.3f us\n", m.TimeSeconds*1e6)
}
