// Quickstart: compress a synthetic seismic kernel with tile low-rank
// approximation and solve one Multi-Dimensional Deconvolution with LSQR —
// the paper's pipeline in a dozen lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/seismic"
)

func main() {
	// A small ocean-bottom survey: 96 sources over 60 seafloor receivers.
	pipe, err := core.BuildPipeline(core.PipelineOptions{
		Dataset: seismic.Options{
			Geom: seismic.Geometry{
				NsX: 12, NsY: 8, NrX: 10, NrY: 6,
				Dx: 20, Dy: 20, SrcDepth: 10, RecDepth: 300,
			},
			Nt: 256, Dt: 0.004,
		},
		TileSize: 10,   // the paper's nb
		Accuracy: 1e-4, // the paper's acc
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel: %d frequency matrices, %.1f kB dense, %.1f kB TLR-compressed\n",
		pipe.DS.NumFreqs(), float64(pipe.DenseBytes)/1e3, float64(pipe.CompressedBytes)/1e3)

	// Deconvolve one virtual source with 30 LSQR iterations (§6.2).
	rep, err := pipe.RunMDD(pipe.DS.Geom.NumReceivers()/2, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adjoint (cross-correlation) NMSE vs truth: %.4f\n", rep.AdjointNMSE)
	fmt.Printf("MDD inversion NMSE vs truth:               %.4f\n", rep.InversionNMSE)
	fmt.Printf("LSQR: %d iterations, final residual %.3g\n", rep.Iterations, rep.FinalResidual)
}
