// Compression sweep: compares the four algebraic tile compressors the
// paper cites (truncated SVD, rank-revealing QR, randomized SVD, adaptive
// cross approximation) on a real Hilbert-sorted frequency matrix from the
// synthetic survey — an ablation of the pluggable compression step.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/dense"
	"repro/internal/seismic"
	"repro/internal/sfc"
	"repro/internal/tlr"
)

func main() {
	ds, err := seismic.Generate(seismic.DemoOptions())
	if err != nil {
		log.Fatal(err)
	}
	hds, _ := ds.Reorder(sfc.Hilbert)
	// pick the highest in-band frequency: the hardest to compress
	k := hds.K[hds.NumFreqs()-1]
	fmt.Printf("frequency matrix: %dx%d at %.1f Hz\n", k.Rows, k.Cols, hds.Freqs[hds.NumFreqs()-1])

	fmt.Printf("%8s %10s %10s %12s %14s %12s\n",
		"method", "max rank", "avg rank", "compression", "rel error", "time")
	for _, method := range []tlr.Method{tlr.MethodSVD, tlr.MethodRRQR, tlr.MethodRSVD, tlr.MethodACA} {
		t0 := time.Now()
		tm, err := tlr.Compress(k, tlr.Options{
			NB: 48, Tol: 1e-3, Method: method,
			Rng: rand.New(rand.NewSource(1)),
		})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(t0)
		errRel := dense.RelError(tm.Reconstruct(), k)
		fmt.Printf("%8v %10d %10.1f %11.2fx %14.2e %12s\n",
			method, tm.MaxRank(), tm.AvgRank(), tm.CompressionRatio(), errRel, elapsed.Round(time.Millisecond))
	}

	fmt.Println("\nTLR-MVM vs dense MVM on the compressed matrix:")
	tm, err := tlr.Compress(k, tlr.Options{NB: 48, Tol: 1e-3})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := dense.Random(rng, k.Cols, 1).Data
	yd := make([]complex64, k.Rows)
	yt := make([]complex64, k.Rows)

	const reps = 200
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		k.MulVec(x, yd)
	}
	tDense := time.Since(t0)
	t0 = time.Now()
	for i := 0; i < reps; i++ {
		tm.MulVecParallel(x, yt, 0)
	}
	tTLR := time.Since(t0)
	var num, den float64
	for i := range yd {
		dr := float64(real(yd[i]) - real(yt[i]))
		di := float64(imag(yd[i]) - imag(yt[i]))
		num += dr*dr + di*di
		den += float64(real(yd[i]))*float64(real(yd[i])) + float64(imag(yd[i]))*float64(imag(yd[i]))
	}
	fmt.Printf("  dense MVM: %v/op   TLR-MVM: %v/op   result NMSE %.2e\n",
		(tDense / reps).Round(time.Microsecond), (tTLR / reps).Round(time.Microsecond), num/den)
}
