// MDD on the overthrust-style demo survey: builds the full laptop-scale
// dataset (water column over faulted dipping reflectors, free-surface
// multiples in the downgoing wavefield), compresses the kernel with
// Hilbert-sorted TLR, and deconvolves a line of virtual sources — the
// workflow behind Figs. 11 and 13.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/lsqr"
	"repro/internal/seismic"
)

func main() {
	opts := seismic.DemoOptions()
	fmt.Printf("survey: %dx%d sources, %dx%d receivers on the seafloor (%.0f m water)\n",
		opts.Geom.NsX, opts.Geom.NsY, opts.Geom.NrX, opts.Geom.NrY, opts.Geom.RecDepth)

	t0 := time.Now()
	pipe, err := core.BuildPipeline(core.PipelineOptions{
		Dataset: opts, TileSize: 48, Accuracy: 1e-3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modelled + compressed %d frequency matrices in %.1fs (TLR %.2fx smaller)\n",
		pipe.DS.NumFreqs(), time.Since(t0).Seconds(), pipe.CompressionRatio())

	// a short line of virtual sources along the central crossline
	g := pipe.DS.Geom
	iy := g.NrY / 2
	var vss []int
	for ix := 0; ix < g.NrX; ix += 4 {
		vss = append(vss, g.ReceiverIndex(ix, iy))
	}
	t0 = time.Now()
	sols, err := pipe.Problem.InvertLine(vss, lsqr.Options{MaxIters: 30}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inverted %d virtual sources in %.1fs (embarrassingly parallel, §6.4)\n",
		len(sols), time.Since(t0).Seconds())
	for _, sol := range sols {
		nmse := pipe.Problem.NMSEAgainstTruth(sol.X, sol.VS)
		fmt.Printf("  virtual source %3d: NMSE vs true reflectivity %.4f (%d iters)\n",
			sol.VS, nmse, sol.LSQR.Iters)
	}
}
