// Cross-module differential tests: the testkit oracle driven end to end
// over the paper's pipeline — synthesize, Hilbert-reorder, compress,
// then require every execution path of the stack (dense, TLR sequential/
// parallel/batched, MDC operator, wsesim PE simulation, reduced-precision
// storage) to agree within precision-derived budgets, and the solvers to
// recover the same answer through compressed and dense kernels.
package repro

import (
	"testing"

	"repro/internal/cgls"
	"repro/internal/lsqr"
	"repro/internal/mdc"
	"repro/internal/precision"
	"repro/internal/seismic"
	"repro/internal/sfc"
	"repro/internal/testkit"
	"repro/internal/tlr"
)

// TestDifferentialOracleFullStack runs the oracle on Hilbert-reordered
// seismic frequency slices — the exact matrix class the paper compresses
// — with a reduced-precision leg.
func TestDifferentialOracleFullStack(t *testing.T) {
	ds, err := seismic.Generate(seismic.Options{
		Geom: seismic.Geometry{
			NsX: 8, NsY: 6, NrX: 7, NrY: 5,
			Dx: 20, Dy: 20, SrcDepth: 10, RecDepth: 300,
		},
		Nt: 128, Dt: 0.004,
	})
	if err != nil {
		t.Fatal(err)
	}
	hds, _ := ds.Reorder(sfc.Hilbert)
	for _, f := range []int{0, len(hds.K) / 2} {
		o, err := testkit.New(hds.K[f], testkit.Config{
			TLROpts: tlr.Options{NB: 8, Tol: 1e-4},
			Format:  precision.FP16,
		})
		if err != nil {
			t.Fatalf("freq %d: %v", f, err)
		}
		if err := o.CompressionHolds(); err != nil {
			t.Fatalf("freq %d: %v", f, err)
		}
		if err := o.Check(testkit.NewRNG(int64(200+f)), 2); err != nil {
			t.Fatalf("freq %d: %v", f, err)
		}
	}
}

// TestDifferentialSolversThroughCompressedKernel: LSQR and CGLS solving
// the same consistent system through the TLR-backed MDC operator must
// agree with each other and with the planted solution — numerical-drift
// coverage for the whole inversion path.
func TestDifferentialSolversThroughCompressedKernel(t *testing.T) {
	mats, err := testkit.SeismicBand(3)
	if err != nil {
		t.Fatal(err)
	}
	dk, err := mdc.NewDenseKernel(mats)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := mdc.CompressKernel(dk, tlr.Options{NB: 8, Tol: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	op := &mdc.FreqOperator{K: tk}
	rng := testkit.NewRNG(210)
	xTrue := testkit.Vec(rng, op.Cols())
	b := make([]complex64, op.Rows())
	op.Apply(xTrue, b)
	rl, err := lsqr.Solve(op, b, lsqr.Options{MaxIters: 200, ATol: 1e-10, BTol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := cgls.Solve(op, b, cgls.Options{MaxIters: 200, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	// LSQR and CGLS are the same Krylov iteration in exact arithmetic;
	// in float32 on an ill-conditioned kernel the iterates drift apart
	// in near-null-space directions, so only coarse agreement holds —
	// the residual checks below are the sharp contract.
	if e := testkit.RelErr(rl.X, rc.X); e > 0.15 {
		t.Errorf("LSQR and CGLS disagree through the TLR kernel: %g", e)
	}
	// the residuals, not the iterates, are the solver contract on an
	// ill-conditioned operator: both must fit the data they were given
	rOf := func(x []complex64) float64 {
		y := make([]complex64, op.Rows())
		op.Apply(x, y)
		return testkit.RelErr(y, b)
	}
	if r := rOf(rl.X); r > 1e-3 {
		t.Errorf("LSQR residual through TLR kernel: %g", r)
	}
	if r := rOf(rc.X); r > 1e-3 {
		t.Errorf("CGLS residual through TLR kernel: %g", r)
	}
}

// TestHilbertReorderCommutesWithMVM: permuting rows/columns before the
// product and un-permuting after must reproduce the natural-order MVM —
// the identity the whole reordering pipeline assumes (§6.1).
func TestHilbertReorderCommutesWithMVM(t *testing.T) {
	rng := testkit.NewRNG(220)
	nx, ny := 6, 5
	m := nx * ny
	n := 24
	a := testkit.Mat(rng, m, n)
	perm := sfc.Permutation(sfc.GridPoints(nx, ny), sfc.Hilbert)
	ar := testkit.Mat(testkit.NewRNG(0), m, n) // shape holder, overwritten
	copy(ar.Data, sfc.ApplyRows(a.Data, m, n, perm))
	x := testkit.Vec(rng, n)
	want := make([]complex64, m)
	a.MulVec(x, want)
	got := make([]complex64, m)
	ar.MulVec(x, got)
	back := sfc.UnpermuteVector(got, perm)
	if d := testkit.MaxULPDist(back, want); d != 0 {
		t.Fatalf("reorder/unpermute changed the product by %d ULPs", d)
	}
}
