// Out-of-core and estimator validation tier: the paged operator store
// exercised through a real temp-dir file (write, reopen, stream tiles
// under an eviction-forcing budget) and held differentially to the
// in-memory kernels, plus the analytic precision-noise estimator held to
// "bound ≥ measured" on every oracle-style case. CI runs the store tests
// as the integration job's out-of-core step (-run TestOutOfCore).
package repro

import (
	"path/filepath"
	"testing"

	"repro/internal/estimator"
	"repro/internal/opstore"
	"repro/internal/precision"
	"repro/internal/testkit"
	"repro/internal/tlr"
	"repro/internal/tlrio"
)

// outOfCoreKernel compresses a two-frequency seismic band into a
// tlrio.Kernel, the shared fixture for the store tests below.
func outOfCoreKernel(t *testing.T) *tlrio.Kernel {
	t.Helper()
	mats, err := testkit.SeismicBand(2)
	if err != nil {
		t.Fatal(err)
	}
	k := &tlrio.Kernel{}
	for f, a := range mats {
		tm, err := tlr.Compress(a, tlr.Options{NB: 8, Tol: 1e-5})
		if err != nil {
			t.Fatal(err)
		}
		k.Freqs = append(k.Freqs, float64(f))
		k.Mats = append(k.Mats, tm)
	}
	return k
}

// TestOutOfCoreStoreMatchesInMemory is the store-backed differential
// pass: the seismic kernel written to a temp-dir page file, reopened,
// and driven through every product path with a budget small enough that
// tiles evict mid-product — each path must agree with its fully
// in-memory twin within the 1e-6 acceptance threshold (the fp32 store
// decodes bit-identically, so the matched-kernel paths must in fact
// agree exactly).
func TestOutOfCoreStoreMatchesInMemory(t *testing.T) {
	k := outOfCoreKernel(t)
	path := filepath.Join(t.TempDir(), "band.tlrp")
	if err := opstore.WriteFile(path, k, nil); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, tm := range k.Mats {
		total += tm.CompressedBytes()
	}
	st, err := opstore.OpenFile(path, total/2)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	rng := testkit.NewRNG(300)
	for f, tm := range k.Mats {
		ooc, err := st.Matrix(f)
		if err != nil {
			t.Fatal(err)
		}
		if !ooc.OutOfCore() {
			t.Fatalf("freq %d: store matrix claims to be in-memory", f)
		}
		x := testkit.Vec(rng, tm.N)
		xa := testkit.Vec(rng, tm.M)
		want := make([]complex64, tm.M)
		got := make([]complex64, tm.M)
		wantAdj := make([]complex64, tm.N)
		gotAdj := make([]complex64, tm.N)

		tm.MulVec(x, want)
		ooc.MulVec(x, got)
		if e := testkit.RelErr(got, want); e > 1e-6 {
			t.Errorf("freq %d MulVec: store-backed rel err %g > 1e-6", f, e)
		}
		tm.MulVecConjTrans(xa, wantAdj)
		ooc.MulVecConjTrans(xa, gotAdj)
		if e := testkit.RelErr(gotAdj, wantAdj); e > 1e-6 {
			t.Errorf("freq %d MulVecConjTrans: store-backed rel err %g > 1e-6", f, e)
		}
		tm.MulVecSoA(x, want)
		ooc.MulVecSoA(x, got)
		if e := testkit.RelErr(got, want); e > 1e-6 {
			t.Errorf("freq %d MulVecSoA: store-backed rel err %g > 1e-6", f, e)
		}
		if err := ooc.MulVecBatched(x, got, 2); err != nil {
			t.Fatal(err)
		}
		if e := testkit.RelErr(got, want); e > testkit.ExecTolerance(tm.N) {
			t.Errorf("freq %d MulVecBatched: store-backed rel err %g", f, e)
		}
	}
	stats := st.Stats()
	if stats.Hits == 0 || stats.Misses == 0 || stats.Evictions == 0 {
		t.Fatalf("differential pass did not stream tiles (stats %+v)", stats)
	}
	if stats.ResidentBytes > stats.Budget {
		t.Fatalf("resident %d exceeds budget %d", stats.ResidentBytes, stats.Budget)
	}
}

// TestOutOfCoreQuantizedStore holds a reduced-tier temp-dir store to
// precision.Quantize's in-memory operator: the decoded tiles are defined
// to be bit-identical, so the products must match exactly even while
// streaming under an eviction-forcing budget.
func TestOutOfCoreQuantizedStore(t *testing.T) {
	k := outOfCoreKernel(t)
	for _, pol := range []precision.Policy{
		precision.Uniform{F: precision.FP16},
		precision.DiagonalBand{Band: 0.25, Demoted: precision.BF16},
	} {
		path := filepath.Join(t.TempDir(), "band.tlrp")
		if err := opstore.WriteFile(path, k, pol); err != nil {
			t.Fatal(err)
		}
		st, err := opstore.OpenFile(path, 24<<10)
		if err != nil {
			t.Fatal(err)
		}
		rng := testkit.NewRNG(310)
		for f, tm := range k.Mats {
			q, err := precision.Quantize(tm, pol)
			if err != nil {
				t.Fatal(err)
			}
			ooc, err := st.Matrix(f)
			if err != nil {
				t.Fatal(err)
			}
			x := testkit.Vec(rng, tm.N)
			want := make([]complex64, tm.M)
			got := make([]complex64, tm.M)
			q.T.MulVec(x, want)
			ooc.MulVec(x, got)
			if d := testkit.MaxULPDist(got, want); d != 0 {
				t.Errorf("%+v freq %d: store-backed quantized product drifts %d ULPs", pol, f, d)
			}
		}
		st.Close()
	}
}

// TestEstimatorSoundness is the differential contract of the analytic
// noise model: on every oracle-style case — seismic frequency slices
// swept over compression tolerance and storage-tier policy — the
// predicted NMSE bound must dominate the measured NMSE of the quantized
// compressed product against the dense reference, while staying within
// 10× of the tolerance the differential suite already enforces (sound
// but not uselessly loose).
func TestEstimatorSoundness(t *testing.T) {
	mats, err := testkit.SeismicBand(2)
	if err != nil {
		t.Fatal(err)
	}
	tols := []float64{1e-5, 1e-4, 1e-3}
	policies := []precision.Policy{
		nil, // uniform fp32
		precision.Uniform{F: precision.FP16},
		precision.Uniform{F: precision.BF16},
		precision.DiagonalBand{Band: 0.3, Demoted: precision.FP16},
		precision.DiagonalBand{Band: 0.25, Demoted: precision.BF16},
	}
	rng := testkit.NewRNG(320)
	for fi, a := range mats {
		for _, tol := range tols {
			tm, err := tlr.Compress(a, tlr.Options{NB: 8, Tol: tol})
			if err != nil {
				t.Fatal(err)
			}
			for _, pol := range policies {
				op := tm
				if pol != nil {
					q, err := precision.Quantize(tm, pol)
					if err != nil {
						t.Fatal(err)
					}
					op = q.T
				}
				pred, err := estimator.Predict(estimator.Config{
					M: a.Rows, N: a.Cols, NB: 8, Acc: tol, Policy: pol,
				})
				if err != nil {
					t.Fatal(err)
				}
				// Measured NMSE: worst relative error of the stored
				// operator's product against the dense reference over a
				// few random vectors, squared.
				var worst float64
				for trial := 0; trial < 3; trial++ {
					x := testkit.Vec(rng, a.Cols)
					want := make([]complex64, a.Rows)
					got := make([]complex64, a.Rows)
					a.MulVec(x, want)
					op.MulVec(x, got)
					if e := testkit.RelErr(got, want); e > worst {
						worst = e
					}
				}
				measured := worst * worst
				if measured > pred.NMSEBound {
					t.Errorf("freq %d tol %g policy %+v: measured NMSE %g exceeds predicted bound %g",
						fi, tol, pol, measured, pred.NMSEBound)
				}
				// Tightness: the bound must not drift above 10× the
				// suite's own tolerance for the same configuration.
				fmtWorst := worstFormat(pol)
				if limit := 10 * testkit.MVMTolerance(a.Cols, tol, fmtWorst); pred.RelErrBound > limit {
					t.Errorf("freq %d tol %g policy %+v: bound %g looser than 10x suite tolerance %g",
						fi, tol, pol, pred.RelErrBound, limit)
				}
			}
		}
	}
}

// worstFormat returns the coarsest storage format a policy can assign,
// for anchoring the estimator bound to the suite tolerance.
func worstFormat(pol precision.Policy) precision.Format {
	switch p := pol.(type) {
	case precision.Uniform:
		return p.F
	case precision.DiagonalBand:
		return p.Demoted
	default:
		return precision.FP32
	}
}
