// Serving-layer load test: hundreds of concurrent small jobs from
// several tenants hammer one server through the typed client's retry
// path, with admission limits small enough that 429 backpressure fires
// constantly. Runs under -race in `make race-stress`; the assertions
// are exact because the server's accounting is deterministic even when
// its scheduling is not.
package repro

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/mddclient"
	"repro/internal/mddserve"
)

// newLocalServer exposes the server on 127.0.0.1:0 for the duration of
// the test.
func newLocalServer(t *testing.T, srv *mddserve.Server) *httptest.Server {
	t.Helper()
	web := httptest.NewServer(srv.Handler())
	t.Cleanup(web.Close)
	return web
}

func TestStressServeConcurrentJobs(t *testing.T) {
	const (
		tenants   = 4
		perTenant = 60 // 240 jobs total
		inflight  = 5
	)
	srv := mddserve.New(mddserve.Config{
		Workers:           4,
		Shards:            4,
		QueueSize:         8,
		PerTenantInflight: inflight,
		BackoffSleep:      func(time.Duration) {},
	})
	defer srv.Close()
	web := newLocalServer(t, srv)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// Tiny mixed workload on one shared cached dataset: mostly quick
	// inversions, with compress and tlrmvm jobs interleaved.
	specFor := func(i int) mddserve.JobSpec {
		spec := mddserve.JobSpec{Type: mddserve.JobMDD, Dataset: serveDataset(), Iters: 2}
		switch i % 5 {
		case 3:
			spec = mddserve.JobSpec{Type: mddserve.JobCompress, Dataset: serveDataset()}
		case 4:
			spec = mddserve.JobSpec{Type: mddserve.JobTLRMVM, Dataset: serveDataset(), Seed: int64(i)}
		default:
			spec.VS = i % serveDataset().Receivers()
		}
		return spec
	}

	var wg sync.WaitGroup
	errs := make(chan error, tenants*perTenant)
	for tn := 0; tn < tenants; tn++ {
		client := mddclient.New(web.URL, mddclient.Options{
			Tenant:      fmt.Sprintf("tenant-%d", tn),
			MaxAttempts: 200, // admission pressure is the point; keep retrying
			Sleep:       func(time.Duration) { time.Sleep(time.Millisecond) },
		})
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				status, err := client.Run(ctx, specFor(i))
				if err != nil {
					errs <- fmt.Errorf("job %d: %w", i, err)
					return
				}
				if status.State != mddserve.StateDone {
					errs <- fmt.Errorf("job %d finished %s: %s", i, status.State, status.Error)
				}
			}(i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	stats := srv.Stats()
	if got := stats.Completed; got != tenants*perTenant {
		t.Errorf("completed %d jobs, want %d", got, tenants*perTenant)
	}
	if stats.Failed != 0 || stats.Cancelled != 0 {
		t.Errorf("failed=%d cancelled=%d, want 0/0", stats.Failed, stats.Cancelled)
	}
	// The load (60 jobs per tenant against a 5-job budget) must have
	// exercised admission control, and the limit must never have been
	// breached: the peak is the high-water mark taken under the same
	// lock that admits.
	if stats.RejectsQueue+stats.RejectsTenant == 0 {
		t.Error("load never triggered admission control; the test is not stressing anything")
	}
	for tenant, peak := range stats.PeakInflight {
		if peak > inflight {
			t.Errorf("tenant %s peaked at %d in-flight jobs, limit %d", tenant, peak, inflight)
		}
	}
	if len(stats.PeakInflight) != tenants {
		t.Errorf("saw %d tenants, want %d", len(stats.PeakInflight), tenants)
	}
}

// TestStressServeCancelStorm mixes cancellation into concurrent load:
// every other job is cancelled right after submission. Nothing may
// deadlock, double-finish, or leak a tenant slot.
func TestStressServeCancelStorm(t *testing.T) {
	const jobs = 80
	srv := mddserve.New(mddserve.Config{
		Workers:           2,
		QueueSize:         jobs,
		PerTenantInflight: jobs,
		BackoffSleep:      func(time.Duration) {},
	})
	defer srv.Close()
	web := newLocalServer(t, srv)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	client := mddclient.New(web.URL, mddclient.Options{Tenant: "storm", MaxAttempts: 100,
		Sleep: func(time.Duration) { time.Sleep(time.Millisecond) }})

	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := client.Submit(ctx, mddserve.JobSpec{
				Type: mddserve.JobMDD, Dataset: serveDataset(), Iters: 3, VS: i % 9,
			})
			if err != nil {
				errs <- fmt.Errorf("submit %d: %w", i, err)
				return
			}
			if i%2 == 1 {
				if _, err := client.Cancel(ctx, id); err != nil {
					errs <- fmt.Errorf("cancel %d: %w", i, err)
					return
				}
			}
			status, err := client.Wait(ctx, id)
			if err != nil {
				errs <- fmt.Errorf("wait %d: %w", i, err)
				return
			}
			if !status.State.Terminal() {
				errs <- fmt.Errorf("job %d ended non-terminal: %s", i, status.State)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	stats := srv.Stats()
	if total := stats.Completed + stats.Cancelled; total != jobs {
		t.Errorf("completed %d + cancelled %d = %d, want %d (failed=%d)",
			stats.Completed, stats.Cancelled, total, jobs, stats.Failed)
	}
	if stats.Failed != 0 {
		t.Errorf("%d jobs failed under the cancel storm", stats.Failed)
	}
	// Every slot must be returned: a fresh submit succeeds immediately
	// with retries disabled.
	probe := mddclient.New(web.URL, mddclient.Options{Tenant: "storm", MaxAttempts: 1})
	if _, err := probe.Run(ctx, mddserve.JobSpec{Type: mddserve.JobCompress, Dataset: serveDataset()}); err != nil {
		t.Errorf("post-storm submit failed, a slot leaked: %v", err)
	}
}
