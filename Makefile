# Development entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

GO ?= go

# every Fuzz* target in the tree, as "package target" pairs
FUZZ_TARGETS = \
	internal/sfc:FuzzHilbertRoundTrip \
	internal/sfc:FuzzPermutationBijection \
	internal/sfc:FuzzVectorPermutationRoundTrip \
	internal/cfloat:FuzzSplitMergeRoundTrip \
	internal/cfloat:FuzzComplexMVMViaFourReal \
	internal/precision:FuzzF16RoundTrip \
	internal/precision:FuzzBF16RoundTrip \
	internal/tlrio:FuzzRead

FUZZTIME ?= 10s

.PHONY: all build vet test race fuzz bench

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -shuffle=on ./...

fuzz:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; target=$${t##*:}; \
		echo "== $$pkg $$target"; \
		$(GO) test -run='^$$' -fuzz="^$$target$$" -fuzztime=$(FUZZTIME) ./$$pkg/; \
	done

bench:
	$(GO) test -bench=. -benchtime=1x ./...
