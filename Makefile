# Development entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

GO ?= go

# every Fuzz* target in the tree, as "package target" pairs
FUZZ_TARGETS = \
	internal/sfc:FuzzHilbertRoundTrip \
	internal/sfc:FuzzPermutationBijection \
	internal/sfc:FuzzVectorPermutationRoundTrip \
	internal/cfloat:FuzzSplitMergeRoundTrip \
	internal/cfloat:FuzzComplexMVMViaFourReal \
	internal/precision:FuzzF16RoundTrip \
	internal/precision:FuzzBF16RoundTrip \
	internal/tlrio:FuzzRead \
	internal/tlr:FuzzSoARoundTrip \
	internal/lsqr:FuzzCheckpointDecode \
	internal/cgls:FuzzCheckpointDecode \
	internal/analysis:FuzzCFGBuild

FUZZTIME ?= 10s

.PHONY: all build vet test race race-stress integration fuzz bench bench-json bench-compare lint repolint vuln cover

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -shuffle=on ./...

# concurrency stress tests (TestStress*, skipped under -short): sharded
# scheduler with mid-flight revocation, concurrent MDC fan-out, batched
# TLR-MVM, and the mddserve load tests at the repo root — run repeatedly
# under the race detector
race-stress:
	$(GO) test -race -count=2 -run '^TestStress' ./ ./internal/batch/ ./internal/mdc/ ./internal/opstore/ ./internal/tlr/

# serving-layer integration suite: typed client against a live
# in-process mddserve instance (submit/poll/stream/cancel, backpressure,
# chaos-over-HTTP differential)
integration:
	$(GO) test -race -run '^TestServeSuite' -v ./

fuzz:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; target=$${t##*:}; \
		echo "== $$pkg $$target"; \
		$(GO) test -run='^$$' -fuzz="^$$target$$" -fuzztime=$(FUZZTIME) ./$$pkg/; \
	done

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# ---- continuous benchmarking (mirrors the CI bench job) ----

BENCH_PROFILE ?= short
BENCH_OUT ?= BENCH_ci.json

bench-json:
	$(GO) run ./cmd/benchreport run -profile $(BENCH_PROFILE) -label local -o $(BENCH_OUT)

bench-compare: bench-json
	$(GO) run ./cmd/benchreport compare BENCH_baseline.json $(BENCH_OUT)

# ---- static analysis / vulnerability scan (mirrors CI lint/vuln jobs) ----
# staticcheck and govulncheck are fetched by CI; locally they are used
# only if already on PATH. repolint is this repo's own analyzer suite
# (TESTING.md, "Static analysis suite") and needs no network: it runs
# once under `go vet -vettool` (per-package analyzers) and once
# standalone (whole-module analyzers such as oraclereg).

REPOLINT_SRCS := $(wildcard cmd/repolint/*.go internal/analysis/*.go)

bin/repolint: $(REPOLINT_SRCS)
	$(GO) build -o bin/repolint ./cmd/repolint

repolint: bin/repolint

lint: vet bin/repolint
	$(GO) vet -vettool=$(CURDIR)/bin/repolint ./...
	./bin/repolint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; ran go vet only" \
		     "(install: go install honnef.co/go/tools/cmd/staticcheck@2025.1.1)"; \
	fi

vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed" \
		     "(install: go install golang.org/x/vuln/cmd/govulncheck@v1.1.4)"; \
	fi

# ---- coverage (mirrors the CI cover job; floor documented in TESTING.md) ----

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1
