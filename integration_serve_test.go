// Serving-layer integration suite: a live in-process mddserve instance
// on 127.0.0.1:0 driven end-to-end through the typed mddclient SDK —
// submit/poll/stream/cancel, the error paths, 429 backpressure with
// client retry, and chaos-over-HTTP where an injected fault schedule
// behind the serving path must not move client-visible results by more
// than 1e-5 from a fault-free server.
package repro

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/mddclient"
	"repro/internal/mddserve"
	"repro/internal/testkit"
	"repro/internal/testkit/suite"
)

// serveDataset is the smallest structurally valid survey: builds in
// milliseconds, so every per-test server can afford a cold cache.
func serveDataset() mddserve.DatasetSpec {
	return mddserve.DatasetSpec{NsX: 4, NsY: 3, NrX: 3, NrY: 3, Nt: 32}
}

// serveStack is one live server plus a client bound to it.
type serveStack struct {
	server *mddserve.Server
	web    *httptest.Server
	client *mddclient.Client
}

// ServeSuite is the integration suite; each test builds the stacks it
// needs via newStack and the suite tears them down.
type ServeSuite struct {
	suite.Suite
	stacks []*serveStack
}

func TestServeSuite(t *testing.T) {
	suite.Run(t, new(ServeSuite))
}

// newStack starts a server with the config (backoff sleeps stubbed out
// so shard retries never stall the suite) behind a 127.0.0.1:0
// listener, plus a default client.
func (s *ServeSuite) newStack(cfg mddserve.Config) *serveStack {
	if cfg.BackoffSleep == nil {
		cfg.BackoffSleep = func(time.Duration) {}
	}
	srv := mddserve.New(cfg)
	web := httptest.NewServer(srv.Handler())
	st := &serveStack{
		server: srv,
		web:    web,
		client: mddclient.New(web.URL, mddclient.Options{Tenant: "suite"}),
	}
	s.stacks = append(s.stacks, st)
	return st
}

// TearDownTest drains every stack the test started. Server first so
// queued jobs drain, then the listener.
func (s *ServeSuite) TearDownTest() {
	for _, st := range s.stacks {
		st.server.Resume()
		st.server.Close()
		st.web.Close()
	}
	s.stacks = nil
}

func (s *ServeSuite) ctx() context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	s.T().Cleanup(cancel)
	return ctx
}

func (s *ServeSuite) TestCompressSubmitAndPoll() {
	st := s.newStack(mddserve.Config{})
	req := s.Require()

	id, err := st.client.Submit(s.ctx(), mddserve.JobSpec{
		Type: mddserve.JobCompress, Dataset: serveDataset(),
	})
	req.NoError(err)
	req.NotEmpty(id)

	status, err := st.client.Wait(s.ctx(), id)
	req.NoError(err)
	req.Equal(mddserve.StateDone, status.State)
	req.NotNil(status.Result)
	req.Greater(status.Result.CompressionRatio, 0.0)
	req.Greater(status.Result.DenseBytes, int64(0))
	req.Greater(status.Result.CompressedBytes, int64(0))
	req.Empty(status.Error)
}

func (s *ServeSuite) TestTLRMVMIsDeterministic() {
	st := s.newStack(mddserve.Config{})
	req := s.Require()

	run := func(seed int64) float64 {
		status, err := st.client.Run(s.ctx(), mddserve.JobSpec{
			Type: mddserve.JobTLRMVM, Dataset: serveDataset(), Reps: 3, Seed: seed,
		})
		req.NoError(err)
		req.Equal(mddserve.StateDone, status.State)
		req.NotNil(status.Result)
		return status.Result.YNorm
	}
	first := run(7)
	req.Greater(first, 0.0)
	req.Equal(first, run(7), "same seed must reproduce the same checksum")
	req.NotEqual(first, run(8), "different seeds must differ")
}

func (s *ServeSuite) TestMDDStreamsResiduals() {
	st := s.newStack(mddserve.Config{})
	req := s.Require()

	id, err := st.client.Submit(s.ctx(), mddserve.JobSpec{
		Type: mddserve.JobMDD, Dataset: serveDataset(), Iters: 6, VS: 2,
	})
	req.NoError(err)

	var events []mddserve.Event
	err = st.client.Stream(s.ctx(), id, 0, func(ev mddserve.Event) error {
		events = append(events, ev)
		return nil
	})
	req.NoError(err)
	req.NotEmpty(events)

	// Sequence numbers are dense and ordered; the stream begins with the
	// queued state and ends with the terminal state.
	for i, ev := range events {
		req.Equal(i, ev.Seq)
	}
	req.Equal(mddserve.EventState, events[0].Kind)
	req.Equal(mddserve.StateQueued, events[0].State)
	last := events[len(events)-1]
	req.Equal(mddserve.EventState, last.Kind)
	req.Equal(mddserve.StateDone, last.State)

	var residuals int
	for _, ev := range events {
		if ev.Kind == mddserve.EventResidual {
			residuals++
			req.Greater(ev.Residual, 0.0)
		}
	}
	status, err := st.client.Status(s.ctx(), id)
	req.NoError(err)
	// One residual event per iteration, except that a converged final
	// iteration breaks out of the solver before its checkpoint fires.
	want := status.Result.Iterations
	if status.Result.Converged {
		want--
	}
	req.Equal(want, residuals, "one residual event per checkpointed iteration")
	req.Equal(len(events), status.Events)
}

func (s *ServeSuite) TestStreamResumesFromSequence() {
	st := s.newStack(mddserve.Config{})
	req := s.Require()

	status, err := st.client.Run(s.ctx(), mddserve.JobSpec{
		Type: mddserve.JobMDD, Dataset: serveDataset(), Iters: 4, VS: 0,
	})
	req.NoError(err)
	req.Equal(mddserve.StateDone, status.State)
	req.GreaterOrEqual(status.Events, 4)

	from := 2
	var events []mddserve.Event
	req.NoError(st.client.Stream(s.ctx(), status.ID, from, func(ev mddserve.Event) error {
		events = append(events, ev)
		return nil
	}))
	req.Len(events, status.Events-from)
	req.Equal(from, events[0].Seq)
	req.Equal(mddserve.StateDone, events[len(events)-1].State)
}

func (s *ServeSuite) TestCancelQueuedJob() {
	st := s.newStack(mddserve.Config{Workers: 1})
	req := s.Require()

	st.server.Pause()
	id, err := st.client.Submit(s.ctx(), mddserve.JobSpec{
		Type: mddserve.JobCompress, Dataset: serveDataset(),
	})
	req.NoError(err)

	status, err := st.client.Cancel(s.ctx(), id)
	req.NoError(err)
	req.Equal(mddserve.StateCancelled, status.State)
	st.server.Resume()

	// The worker must skip the cancelled job and stay healthy for the
	// next one.
	after, err := st.client.Run(s.ctx(), mddserve.JobSpec{
		Type: mddserve.JobCompress, Dataset: serveDataset(),
	})
	req.NoError(err)
	req.Equal(mddserve.StateDone, after.State)

	stats, err := st.client.ServerStats(s.ctx())
	req.NoError(err)
	req.Equal(int64(1), stats.Cancelled)
	req.Equal(int64(1), stats.Completed)
}

func (s *ServeSuite) TestCancelRunningJob() {
	// An op-latency fault whose sleep hook blocks turns "cancel while
	// running" into a deterministic interleaving: the solve parks inside
	// its first operator product, the test cancels, then releases it.
	running := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	sched, err := fault.Parse("op:latency@1")
	s.Require().NoError(err)
	st := s.newStack(mddserve.Config{
		Workers: 1,
		Faults:  sched,
		FaultSleep: func(time.Duration) {
			once.Do(func() { close(running) })
			<-release
		},
	})
	defer close(release)
	req := s.Require()

	id, err := st.client.Submit(s.ctx(), mddserve.JobSpec{
		Type: mddserve.JobMDD, Dataset: serveDataset(), Iters: 20, VS: 1,
	})
	req.NoError(err)
	<-running

	status, err := st.client.Cancel(s.ctx(), id)
	req.NoError(err)
	req.Equal(mddserve.StateRunning, status.State,
		"cancel of a running job is asynchronous: the solve aborts at its next product")
	once.Do(func() {}) // already fired
	release <- struct{}{}

	final, err := st.client.Wait(s.ctx(), id)
	req.NoError(err)
	req.Equal(mddserve.StateCancelled, final.State)
	req.Nil(final.Result)
}

func (s *ServeSuite) TestBadPayloadRejects() {
	st := s.newStack(mddserve.Config{})
	req := s.Require()

	post := func(body string) (int, string) {
		resp, err := http.Post(st.web.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
		req.NoError(err)
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		req.NoError(err)
		return resp.StatusCode, string(b)
	}

	code, body := post("{not json")
	req.Equal(http.StatusBadRequest, code)
	req.Contains(body, mddserve.CodeBadRequest)

	code, body = post(`{"type":"compress","dataset":{"nsx":4,"nsy":3,"nrx":3,"nry":3,"nt":32},"bogus":1}`)
	req.Equal(http.StatusBadRequest, code, "unknown fields must reject, not silently drop")
	req.Contains(body, "bogus")

	// Structural validation through the typed client: bad type and
	// non-power-of-two nt are terminal, not retryable.
	_, err := st.client.Submit(s.ctx(), mddserve.JobSpec{Type: "explode", Dataset: serveDataset()})
	var apiErr *mddclient.APIError
	req.ErrorAs(err, &apiErr)
	req.Equal(http.StatusBadRequest, apiErr.StatusCode)
	req.Equal(mddserve.CodeBadRequest, apiErr.Code)
	req.False(apiErr.Retryable())

	d := serveDataset()
	d.Nt = 48
	_, err = st.client.Submit(s.ctx(), mddserve.JobSpec{Type: mddserve.JobCompress, Dataset: d})
	req.ErrorAs(err, &apiErr)
	req.Equal(mddserve.CodeBadRequest, apiErr.Code)
	req.ErrorContains(err, "power of two")
}

func (s *ServeSuite) TestOversizedJobRejects() {
	st := s.newStack(mddserve.Config{MaxNt: 64, MaxIters: 10})
	req := s.Require()

	d := serveDataset()
	d.Nt = 128 // structurally valid, over this server's cap
	_, err := st.client.Submit(s.ctx(), mddserve.JobSpec{Type: mddserve.JobCompress, Dataset: d})
	var apiErr *mddclient.APIError
	req.ErrorAs(err, &apiErr)
	req.Equal(http.StatusRequestEntityTooLarge, apiErr.StatusCode)
	req.Equal(mddserve.CodeTooLarge, apiErr.Code)
	req.False(apiErr.Retryable())

	_, err = st.client.Submit(s.ctx(), mddserve.JobSpec{
		Type: mddserve.JobMDD, Dataset: serveDataset(), Iters: 50,
	})
	req.ErrorAs(err, &apiErr)
	req.Equal(mddserve.CodeTooLarge, apiErr.Code)
}

func (s *ServeSuite) TestUnknownJobIs404() {
	st := s.newStack(mddserve.Config{})
	req := s.Require()

	var apiErr *mddclient.APIError
	_, err := st.client.Status(s.ctx(), "job-999")
	req.ErrorAs(err, &apiErr)
	req.Equal(http.StatusNotFound, apiErr.StatusCode)
	req.Equal(mddserve.CodeNotFound, apiErr.Code)

	_, err = st.client.Cancel(s.ctx(), "job-999")
	req.ErrorAs(err, &apiErr)
	req.Equal(http.StatusNotFound, apiErr.StatusCode)

	err = st.client.Stream(s.ctx(), "job-999", 0, func(mddserve.Event) error { return nil })
	req.ErrorAs(err, &apiErr)
	req.Equal(http.StatusNotFound, apiErr.StatusCode)
}

func (s *ServeSuite) TestQueueFullBackpressureAndClientRetry() {
	st := s.newStack(mddserve.Config{Workers: 1, QueueSize: 3, PerTenantInflight: 100})
	req := s.Require()

	// Park the worker so admission is exactly deterministic, then fill
	// the queue.
	st.server.Pause()
	ids := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		id, err := st.client.Submit(s.ctx(), mddserve.JobSpec{
			Type: mddserve.JobCompress, Dataset: serveDataset(),
		})
		req.NoError(err)
		ids = append(ids, id)
	}

	// A non-retrying client sees the raw 429.
	noRetry := mddclient.New(st.web.URL, mddclient.Options{Tenant: "suite", MaxAttempts: 1})
	_, err := noRetry.Submit(s.ctx(), mddserve.JobSpec{
		Type: mddserve.JobCompress, Dataset: serveDataset(),
	})
	var apiErr *mddclient.APIError
	req.ErrorAs(err, &apiErr)
	req.Equal(http.StatusTooManyRequests, apiErr.StatusCode)
	req.Equal(mddserve.CodeQueueFull, apiErr.Code)
	req.True(apiErr.Retryable())

	stats, err := st.client.ServerStats(s.ctx())
	req.NoError(err)
	req.Equal(int64(1), stats.RejectsQueue)
	req.Equal(3, stats.QueueDepth)

	// A retrying client's first backoff resumes the server; the worker
	// drains a slot and the retry lands.
	var resume sync.Once
	retrying := mddclient.New(st.web.URL, mddclient.Options{
		Tenant:      "suite",
		MaxAttempts: 10,
		Sleep: func(time.Duration) {
			resume.Do(st.server.Resume)
			time.Sleep(10 * time.Millisecond)
		},
	})
	id, err := retrying.Submit(s.ctx(), mddserve.JobSpec{
		Type: mddserve.JobCompress, Dataset: serveDataset(),
	})
	req.NoError(err, "retry-after-429 must eventually admit once the queue drains")
	ids = append(ids, id)

	for _, id := range ids {
		status, err := st.client.Wait(s.ctx(), id)
		req.NoError(err)
		req.Equal(mddserve.StateDone, status.State)
	}
	stats, err = st.client.ServerStats(s.ctx())
	req.NoError(err)
	req.Equal(int64(4), stats.Completed)
	req.GreaterOrEqual(stats.RejectsQueue, int64(1))
}

func (s *ServeSuite) TestPerTenantLimit() {
	st := s.newStack(mddserve.Config{Workers: 1, QueueSize: 16, PerTenantInflight: 2})
	req := s.Require()
	alice := mddclient.New(st.web.URL, mddclient.Options{Tenant: "alice", MaxAttempts: 1})
	bob := mddclient.New(st.web.URL, mddclient.Options{Tenant: "bob", MaxAttempts: 1})
	spec := mddserve.JobSpec{Type: mddserve.JobCompress, Dataset: serveDataset()}

	st.server.Pause()
	var ids []string
	for i := 0; i < 2; i++ {
		id, err := alice.Submit(s.ctx(), spec)
		req.NoError(err)
		ids = append(ids, id)
	}
	_, err := alice.Submit(s.ctx(), spec)
	var apiErr *mddclient.APIError
	req.ErrorAs(err, &apiErr)
	req.Equal(http.StatusTooManyRequests, apiErr.StatusCode)
	req.Equal(mddserve.CodeTenantLimit, apiErr.Code)

	// Another tenant is unaffected by alice's limit.
	id, err := bob.Submit(s.ctx(), spec)
	req.NoError(err)
	ids = append(ids, id)

	st.server.Resume()
	for _, id := range ids {
		status, err := st.client.Wait(s.ctx(), id)
		req.NoError(err)
		req.Equal(mddserve.StateDone, status.State)
	}
	stats, err := st.client.ServerStats(s.ctx())
	req.NoError(err)
	req.Equal(int64(1), stats.RejectsTenant)
	req.Equal(2, stats.PeakInflight["alice"])
	req.Equal(1, stats.PeakInflight["bob"])
}

// TestChaosOverHTTP runs the same inversion against a fault-free server
// and one whose serving path injects shard deaths, a transient shard
// error, and a whole-product failure. Re-sharding and checkpoint resume
// are bitwise neutral, so the client-visible solutions must agree to
// 1e-5 (the repo-wide chaos tolerance).
func (s *ServeSuite) TestChaosOverHTTP() {
	req := s.Require()
	sched, err := fault.Parse("shard2:die@3,shard5:die@5,shard1:err@2,op:err@8")
	req.NoError(err)

	clean := s.newStack(mddserve.Config{Workers: 1, Shards: 8})
	chaotic := s.newStack(mddserve.Config{
		Workers: 1, Shards: 8,
		Faults:     sched,
		FaultSleep: func(time.Duration) {},
	})

	spec := mddserve.JobSpec{
		Type: mddserve.JobMDD, Dataset: serveDataset(),
		Iters: 8, VS: 3, ReturnSolution: true,
	}
	ref, err := clean.client.Run(s.ctx(), spec)
	req.NoError(err)
	req.Equal(mddserve.StateDone, ref.State)

	got, err := chaotic.client.Run(s.ctx(), spec)
	req.NoError(err, "the resilient stack must absorb the whole schedule")
	req.Equal(mddserve.StateDone, got.State)
	req.Greater(got.Result.Restarts, 0, "op:err@8 must force a solver restart")
	req.Greater(got.Result.SalvagedIters, 0, "the restart must resume from a checkpoint")
	req.Equal(ref.Result.Iterations, got.Result.Iterations)

	rel := testkit.RelErr(solutionVec(s.T(), got.Result), solutionVec(s.T(), ref.Result))
	req.LessOrEqual(rel, 1e-5,
		"faulted serving path deviates from fault-free: relErr %.3g", rel)
}

// solutionVec rebuilds the complex solution from its interleaved wire
// encoding.
func solutionVec(t *testing.T, r *mddserve.JobResult) []complex64 {
	t.Helper()
	if r == nil || len(r.Solution)%2 != 0 {
		t.Fatal("result carries no interleaved solution")
	}
	out := make([]complex64, len(r.Solution)/2)
	for i := range out {
		out[i] = complex(r.Solution[2*i], r.Solution[2*i+1])
	}
	return out
}

func (s *ServeSuite) TestHealthStatsAndMetrics() {
	st := s.newStack(mddserve.Config{})
	req := s.Require()
	req.NoError(st.client.Health(s.ctx()))

	// The metrics endpoint mirrors the obs registry; collection is
	// global, so only assert deltas caused by this stack's job.
	status, err := st.client.Run(s.ctx(), mddserve.JobSpec{
		Type: mddserve.JobCompress, Dataset: serveDataset(),
	})
	req.NoError(err)
	req.Equal(mddserve.StateDone, status.State)

	stats, err := st.client.ServerStats(s.ctx())
	req.NoError(err)
	req.Equal(int64(1), stats.Submitted)
	req.Equal(int64(1), stats.Completed)
	req.Equal(0, stats.QueueDepth)

	snap, err := st.client.Metrics(s.ctx())
	req.NoError(err)
	req.NotNil(snap)
}
