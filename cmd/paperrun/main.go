// Command paperrun regenerates every machine-model experiment of the
// paper in one run and writes a markdown report with the published value
// beside each measured one — the single-command reproduction artifact.
// The laptop-scale MDD figures are included when -full is set (they add
// a few minutes of modelling and inversion time).
//
//	paperrun -o REPORT.md
//	paperrun -o REPORT.md -full
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/cs2"
	"repro/internal/lsqr"
	"repro/internal/ranks"
	"repro/internal/seismic"
	"repro/internal/wse"
)

type report struct {
	b strings.Builder
}

func (r *report) line(format string, args ...any) {
	fmt.Fprintf(&r.b, format+"\n", args...)
}

var distCache = map[ranks.Config]*ranks.Distribution{}

func dist(cfg ranks.Config) *ranks.Distribution {
	if d, ok := distCache[cfg]; ok {
		return d
	}
	d, err := ranks.New(cfg)
	if err != nil {
		log.Fatalf("calibrating %v: %v", cfg, err)
	}
	distCache[cfg] = d
	return d
}

func eval(cfg ranks.Config, sw, systems int, s wse.Strategy) *wse.Metrics {
	m, err := wse.Plan{
		Dist: dist(cfg), Arch: cs2.DefaultArch(),
		StackWidth: sw, Systems: systems, Strategy: s,
	}.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func pct(measured, paper float64) string {
	return fmt.Sprintf("%+.1f%%", 100*(measured-paper)/paper)
}

func main() {
	log.SetFlags(0)
	out := flag.String("o", "REPORT.md", "output markdown path")
	full := flag.Bool("full", false, "include the laptop-scale MDD experiments")
	flag.Parse()

	start := time.Now()
	r := &report{}
	r.line("# Reproduction report")
	r.line("")
	r.line("Generated %s by `cmd/paperrun`. Every row pairs a published value", time.Now().UTC().Format(time.RFC3339))
	r.line("from the paper's evaluation with this reproduction's measurement.")
	r.line("")

	// Fig. 12 totals
	r.line("## Fig. 12 — compressed dataset sizes (GB)")
	r.line("")
	r.line("| nb | acc | paper | model | Δ |")
	r.line("|---|---|---|---|---|")
	for _, nb := range []int{25, 50, 70} {
		for _, acc := range []float64{1e-4, 3e-4, 5e-4, 7e-4} {
			cfg := ranks.Config{NB: nb, Acc: acc}
			paper := float64(ranks.Fig12TotalBytes[cfg]) / 1e9
			model := float64(dist(cfg).TotalBytes()) / 1e9
			r.line("| %d | %.0e | %.0f | %.1f | %s |", nb, acc, paper, model, pct(model, paper))
		}
	}
	r.line("")

	// Tables 1–3
	type cfgRow struct {
		cfg                ranks.Config
		sw                 int
		paperPE            int64
		paperCyc           int64
		paperRel, paperAbs float64 // PB/s
		paperPF            float64
	}
	rows := []cfgRow{
		{ranks.Config{NB: 25, Acc: 1e-4}, 64, 4417690, 21350, 11.24, 26.19, 3.77},
		{ranks.Config{NB: 50, Acc: 1e-4}, 32, 4330150, 19214, 11.70, 30.15, 4.60},
		{ranks.Config{NB: 70, Acc: 1e-4}, 23, 4416383, 19131, 11.92, 31.62, 4.89},
		{ranks.Config{NB: 50, Acc: 3e-4}, 18, 4445947, 12275, 12.26, 29.05, 4.16},
		{ranks.Config{NB: 70, Acc: 3e-4}, 14, 4252877, 12999, 11.60, 28.79, 4.23},
	}
	r.line("## Tables 1–3 — six shards, strategy 1")
	r.line("")
	r.line("| nb/acc | sw | PEs paper/model | cycles paper/model | rel PB/s paper/model | abs PB/s paper/model | PFlop/s paper/model |")
	r.line("|---|---|---|---|---|---|---|")
	for _, c := range rows {
		m := eval(c.cfg, c.sw, 6, wse.Strategy1)
		r.line("| %d/%.0e | %d | %d / %d | %d / %d | %.2f / %.2f | %.2f / %.2f | %.2f / %.2f |",
			c.cfg.NB, c.cfg.Acc, c.sw,
			c.paperPE, m.PEsUsed,
			c.paperCyc, m.WorstCycles,
			c.paperRel, m.RelativeBW/1e15,
			c.paperAbs, m.AbsoluteBW/1e15,
			c.paperPF, m.FlopRate/1e15)
	}
	r.line("")

	// Table 4
	r.line("## Table 4 — strong scaling, nb=25 acc=1e-4")
	r.line("")
	r.line("| shards | sw | strategy | rel PB/s paper | rel PB/s model | efficiency |")
	r.line("|---|---|---|---|---|---|")
	base := eval(ranks.Config{NB: 25, Acc: 1e-4}, 64, 6, wse.Strategy1)
	t4 := []struct {
		shards, sw int
		strat      wse.Strategy
		paper      float64
	}{
		{6, 64, wse.Strategy1, 11.24},
		{12, 32, wse.Strategy1, 22.13},
		{16, 24, wse.Strategy1, 29.28},
		{20, 19, wse.Strategy1, 35.77},
		{48, 64, wse.Strategy2, 87.73},
	}
	for _, c := range t4 {
		m := eval(ranks.Config{NB: 25, Acc: 1e-4}, c.sw, c.shards, c.strat)
		r.line("| %d | %d | %d | %.2f | %.2f | %.0f%% |",
			c.shards, c.sw, int(c.strat), c.paper, m.RelativeBW/1e15,
			wse.ParallelEfficiency(base, m)*100)
	}
	r.line("")

	// Table 5
	r.line("## Table 5 — 48-shard strategy-2 headline")
	r.line("")
	r.line("| nb | sw | shards | rel PB/s paper/model | abs PB/s paper/model | PFlop/s paper/model |")
	r.line("|---|---|---|---|---|---|")
	t5 := []struct {
		cfg        ranks.Config
		sw, shards int
		rel, abs   float64
		pf         float64
	}{
		{ranks.Config{NB: 25, Acc: 1e-4}, 64, 48, 87.73, 204.51, 29.40},
		{ranks.Config{NB: 50, Acc: 1e-4}, 32, 47, 91.15, 235.04, 35.86},
		{ranks.Config{NB: 70, Acc: 1e-4}, 23, 48, 92.58, 245.59, 37.95},
	}
	for _, c := range t5 {
		m := eval(c.cfg, c.sw, c.shards, wse.Strategy2)
		r.line("| %d | %d | %d | %.2f / %.2f | %.2f / %.2f | %.2f / %.2f |",
			c.cfg.NB, c.sw, c.shards,
			c.rel, m.RelativeBW/1e15, c.abs, m.AbsoluteBW/1e15, c.pf, m.FlopRate/1e15)
	}
	r.line("")

	// Power
	r.line("## §7.6 — power")
	r.line("")
	plan := wse.Plan{Dist: dist(ranks.Config{NB: 25, Acc: 1e-4}), Arch: cs2.DefaultArch(),
		StackWidth: 64, Systems: 6, Strategy: wse.Strategy1}
	mp, err := plan.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	pw := plan.Power(mp)
	r.line("| quantity | paper | model |")
	r.line("|---|---|---|")
	r.line("| sustained power | 16 kW | %.1f kW |", pw.Watts/1e3)
	r.line("| energy efficiency | 36.50 GFlop/s/W | %.2f GFlop/s/W |", pw.GFlopsPerWatt)
	r.line("")

	if *full {
		r.line("## Figs. 11/13 — laptop-scale MDD")
		r.line("")
		pipe, err := core.BuildPipeline(core.PipelineOptions{
			Dataset: seismic.DemoOptions(), TileSize: 48, Accuracy: 1e-3,
		})
		if err != nil {
			log.Fatal(err)
		}
		vs := pipe.DS.Geom.NumReceivers() / 2
		rep, err := pipe.RunMDD(vs, 30)
		if err != nil {
			log.Fatal(err)
		}
		r.line("- compression: %.2fx (paper: 7x at its 300x larger matrix extent)", pipe.CompressionRatio())
		r.line("- adjoint NMSE %.4f vs inversion NMSE %.4f: inversion wins %.1fx",
			rep.AdjointNMSE, rep.InversionNMSE, rep.AdjointNMSE/rep.InversionNMSE)
		g := pipe.DS.Geom
		vss := make([]int, g.NrX)
		for ix := 0; ix < g.NrX; ix++ {
			vss[ix] = g.ReceiverIndex(ix, g.NrY/2)
		}
		sols, err := pipe.Problem.InvertLine(vss, lsqr.Options{MaxIters: 30}, 0)
		if err != nil {
			log.Fatal(err)
		}
		var worst float64
		for _, s := range sols {
			if n := pipe.Problem.NMSEAgainstTruth(s.X, s.VS); n > worst {
				worst = n
			}
		}
		r.line("- %d-virtual-source line inverted in parallel; worst NMSE %.4f", len(sols), worst)
		r.line("")
	}

	r.line("---")
	r.line("generated in %.1fs", time.Since(start).Seconds())

	if err := os.WriteFile(*out, []byte(r.b.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes) in %.1fs\n", *out, r.b.Len(), time.Since(start).Seconds())
}
