// Command compress regenerates Fig. 12: the compression/accuracy tradeoff
// of the TLR pre-processing step.
//
// Two modes:
//
//	-paper   rank-model view at full paper scale: aggregate size and
//	         size-per-frequency curves for every (nb, acc) configuration,
//	         calibrated to the published totals.
//	-demo    real end-to-end compression of the laptop-scale synthetic
//	         dataset, including the NMSE-vs-accuracy sweep of the top
//	         panel (black curves) and a reordering ablation.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/mdc"
	"repro/internal/ranks"
	"repro/internal/seismic"
	"repro/internal/sfc"
	"repro/internal/tlr"
)

func paperScale() {
	fmt.Println("== Fig. 12 (paper scale, rank model): aggregate compressed sizes ==")
	fmt.Printf("%4s %8s %12s %14s %14s\n", "nb", "acc", "total (GB)", "paper (GB)", "compression")
	for _, nb := range []int{25, 50, 70} {
		for _, acc := range []float64{1e-4, 3e-4, 5e-4, 7e-4} {
			cfg := ranks.Config{NB: nb, Acc: acc}
			d, err := ranks.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%4d %8.0e %12.1f %14.1f %13.1fx\n",
				nb, acc, float64(d.TotalBytes())/1e9,
				float64(ranks.Fig12TotalBytes[cfg])/1e9, d.CompressionRatio())
		}
	}
	fmt.Println()
	fmt.Println("== Fig. 12 bottom (paper scale): size per frequency matrix, nb=70 acc=1e-4 ==")
	d, err := ranks.New(ranks.Config{NB: 70, Acc: 1e-4})
	if err != nil {
		log.Fatal(err)
	}
	bpf := d.BytesPerFrequency()
	fmt.Printf("%10s %18s\n", "freq (Hz)", "size (GB)")
	for i := 0; i < len(bpf); i += 23 {
		f := 50.0 * float64(i+1) / float64(len(bpf))
		fmt.Printf("%10.1f %18.3f\n", f, float64(bpf[i])/1e9)
	}
	fmt.Println()
}

func demoScale(iters int) {
	fmt.Println("== Fig. 12 (demo scale, real compression + MDD): NMSE and compression vs acc ==")
	opts := seismic.DemoOptions()
	fmt.Printf("dataset: %d sources x %d receivers\n",
		opts.Geom.NumSources(), opts.Geom.NumReceivers())
	// benchmark solution: tightest accuracy, largest tile size
	vs := opts.Geom.NumReceivers() / 2
	type key struct {
		nb  int
		acc float64
	}
	// at demo scale the matrices are ~300x smaller per side than the
	// paper's, so the per-tile tolerance must be loosened further before
	// the compression error becomes visible over the LSQR floor; the
	// sweep therefore extends into the 1e-3..1e-1 regime
	accs := []float64{1e-4, 1e-3, 1e-2, 3e-2, 7e-2}
	results := map[key]*core.MDDReport{}
	ratios := map[key]float64{}
	var benchNMSE float64
	for _, nb := range []int{16, 32, 48} {
		for _, acc := range accs {
			pipe, err := core.BuildPipeline(core.PipelineOptions{
				Dataset: opts, TileSize: nb, Accuracy: acc,
			})
			if err != nil {
				log.Fatal(err)
			}
			rep, err := pipe.RunMDD(vs, iters)
			if err != nil {
				log.Fatal(err)
			}
			results[key{nb, acc}] = rep
			ratios[key{nb, acc}] = pipe.CompressionRatio()
			if nb == 48 && acc == 1e-4 {
				benchNMSE = rep.InversionNMSE
			}
		}
	}
	fmt.Printf("%4s %8s %14s %18s %13s\n", "nb", "acc", "inv NMSE", "dNMSE vs bench(%)", "compression")
	for _, nb := range []int{16, 32, 48} {
		for _, acc := range accs {
			r := results[key{nb, acc}]
			dn := 100 * (r.InversionNMSE - benchNMSE)
			fmt.Printf("%4d %8.0e %14.5f %18.3f %12.2fx\n",
				nb, acc, r.InversionNMSE, dn, ratios[key{nb, acc}])
		}
	}
	fmt.Println()
	orderingAblation(opts)
}

// orderingAblation compares Hilbert vs Morton vs natural ordering — the
// ablation behind the paper's §4 claim that Hilbert sorting compresses
// best.
func orderingAblation(opts seismic.Options) {
	fmt.Println("== Reordering ablation (nb=48, acc=1e-3): compression by ordering ==")
	ds, err := seismic.Generate(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%10s %13s\n", "ordering", "compression")
	for _, ord := range []sfc.Order{sfc.Shuffled, sfc.Natural, sfc.Morton, sfc.Hilbert} {
		rds, _ := ds.Reorder(ord)
		dk, err := mdc.NewDenseKernel(rds.K)
		if err != nil {
			log.Fatal(err)
		}
		tk, err := mdc.CompressKernel(dk, tlr.Options{NB: 48, Tol: 1e-3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10s %12.2fx\n", ord, float64(dk.Bytes())/float64(tk.Bytes()))
	}
	fmt.Println()
}

func main() {
	log.SetFlags(0)
	paper := flag.Bool("paper", false, "paper-scale rank-model view")
	demo := flag.Bool("demo", false, "laptop-scale end-to-end sweep")
	iters := flag.Int("iters", 30, "LSQR iterations for the demo sweep")
	flag.Parse()
	if !*paper && !*demo {
		flag.Usage()
		os.Exit(2)
	}
	if *paper {
		paperScale()
	}
	if *demo {
		demoScale(*iters)
	}
}
