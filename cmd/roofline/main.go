// Command roofline prints the roofline performance models of Figs. 15 and
// 16: the peak ceilings of the compared platforms, the machine-model
// TLR-MVM operating points, and the paper's published comparisons.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/roofline"
	"repro/internal/wse"
)

func printMachines(ms []roofline.Machine) {
	fmt.Printf("%-38s %14s %14s %12s\n", "platform", "peak BW (PB/s)", "peak PFlop/s", "ridge (F/B)")
	for _, m := range ms {
		fmt.Printf("%-38s %14.3f %14.3f %12.3f\n",
			m.Name, m.PeakBW()/1e15, m.PeakFlops()/1e15, m.RidgeAI())
	}
}

func printPoint(p roofline.Point) {
	fmt.Printf("%-46s AI %.3f flop/B | %8.2f PFlop/s | %8.2f PB/s\n",
		p.Name, p.AI, p.Flops/1e15, p.BW/1e15)
}

func fig15() {
	fmt.Println("== Fig. 15: 6-shard configuration vs vendor hardware ==")
	printMachines(roofline.Fig15Machines())
	fmt.Println()
	// measured operating point: optimal 6-shard config nb=50 acc=3e-4
	m, err := core.RunCS2Experiment(core.CS2Options{
		NB: 50, Acc: 3e-4, StackWidth: 18, Systems: 6, Strategy: wse.Strategy1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("machine-model TLR-MVM operating points (paper: 12.26 PB/s relative):")
	printPoint(roofline.NewPoint("TLR-MVM on six CS-2 (relative)", m.FlopRate, m.RelativeBW))
	printPoint(roofline.NewPoint("TLR-MVM on six CS-2 (absolute)", m.FlopRate, m.AbsoluteBW))
	fmt.Println()
}

func fig16() {
	fmt.Println("== Fig. 16: 48-shard configuration vs the Top-5 systems ==")
	printMachines(roofline.Fig16Machines())
	fmt.Println()
	m, err := core.RunCS2Experiment(core.CS2Options{
		NB: 70, Acc: 1e-4, StackWidth: 23, Systems: 48, Strategy: wse.Strategy2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("machine-model TLR-MVM operating points (paper: 92.58 relative / 245.59 absolute PB/s):")
	printPoint(roofline.NewPoint("TLR-MVM on 48 CS-2 (relative)", m.FlopRate, m.RelativeBW))
	printPoint(roofline.NewPoint("TLR-MVM on 48 CS-2 (absolute)", m.FlopRate, m.AbsoluteBW))
	fmt.Println()
	fmt.Println("paper's constant-rank upper-bound estimates on competing systems:")
	for _, p := range roofline.ConstantRankEstimates() {
		printPoint(p)
	}
	fmt.Println()
	// headline comparisons of §7.5
	lenBW := 0.0
	sumBW := 0.0
	for _, mach := range roofline.Fig16Machines() {
		switch mach.Name {
		case "Leonardo (13824 NVIDIA A100)":
			lenBW = mach.PeakBW()
		case "Summit (27648 NVIDIA V100)":
			sumBW = mach.PeakBW()
		}
	}
	fmt.Printf("relative sustained vs Leonardo theoretical peak: %.2fx (paper: >3x)\n", m.RelativeBW/lenBW)
	fmt.Printf("relative sustained vs Summit theoretical peak:   %.2fx (paper: >3x)\n", m.RelativeBW/sumBW)
	fmt.Println()
}

func main() {
	log.SetFlags(0)
	f15 := flag.Bool("fig15", false, "Fig. 15 vendor comparison")
	f16 := flag.Bool("fig16", false, "Fig. 16 Top-5 comparison")
	flag.Parse()
	if !*f15 && !*f16 {
		flag.Usage()
		os.Exit(2)
	}
	if *f15 {
		fig15()
	}
	if *f16 {
		fig16()
	}
}
