// Command fdmodel reproduces the §6.1 pre-processing workflow on a 2D
// slice of the overthrust-style model: finite-difference modelling of
// pressure and particle-velocity data for one shot, wavefield separation
// into downgoing (p⁺) and upgoing (p⁻) components at the seafloor, and a
// kinematic cross-check of the FD arrivals against the frequency-domain
// Green's-function dataset generator used by the MDD pipeline.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/fdtd"
	"repro/internal/seismic"
)

func main() {
	nx := flag.Int("nx", 480, "grid cells in x")
	nz := flag.Int("nz", 360, "grid cells in z")
	dx := flag.Float64("dx", 5, "grid spacing (m)")
	f0 := flag.Float64("f0", 20, "Ricker peak frequency (Hz)")
	tmax := flag.Float64("tmax", 1.6, "record length (s)")
	flag.Parse()

	model := seismic.DefaultModel(300)
	vel := model.FDSection(*nx, *nz, *dx)
	vmax := 0.0
	for _, v := range vel {
		if v > vmax {
			vmax = v
		}
	}
	dt := 0.9 * *dx / (vmax * math.Sqrt2) // CFL 0.9
	nt := int(*tmax / dt)

	srcIZ := int(10 / *dx)
	if srcIZ < 2 {
		srcIZ = 2
	}
	seafloorIZ := int(300 / *dx)
	recs := make([]fdtd.Receiver, 0, 8)
	for i := 0; i < 8; i++ {
		recs = append(recs, fdtd.Receiver{IX: *nx/4 + i**nx/16, IZ: seafloorIZ})
	}
	cfg := fdtd.Config{
		Grid:  fdtd.Grid{NX: *nx, NZ: *nz, DX: *dx, DT: dt, NT: nt},
		Model: fdtd.Model{Vel: vel, Rho: 1000},
		Src:   fdtd.Source{IX: *nx / 2, IZ: srcIZ, Wavelet: fdtd.RickerWavelet(*f0, 1.2 / *f0, dt, nt)},
		Recs:  recs,
	}
	fmt.Printf("FD grid %dx%d at %.1f m, dt=%.2f ms (CFL %.2f), %d steps, %d receivers on the seafloor\n",
		*nx, *nz, *dx, dt*1e3, cfg.CFL(), nt, len(recs))
	t0 := time.Now()
	res, err := fdtd.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modelled in %.1fs (%.1f Mcell-steps/s)\n",
		time.Since(t0).Seconds(),
		float64(*nx**nz)*float64(nt)/time.Since(t0).Seconds()/1e6)

	fmt.Println()
	fmt.Printf("%9s %12s %12s %14s %14s %12s\n",
		"offset(m)", "t_dir FD(s)", "t_dir ray(s)", "E(p+) direct", "E(p-) direct", "E(p-)/E(p+)")
	for i, rec := range recs {
		p := res.P[i]
		vz := res.VZ[i]
		pPlus, pMinus := fdtd.Separate(p, vz, 1000, model.WaterVel)
		offset := math.Abs(float64(rec.IX-cfg.Src.IX)) * *dx
		dist := math.Hypot(offset, float64(seafloorIZ-srcIZ)**dx)
		tRay := 1.2 / *f0 + dist/model.WaterVel
		tFD := float64(fdtd.PeakIndex(p)) * dt
		// direct-window energies
		lo := int((tRay - 0.03) / dt)
		hi := int((tRay + 0.08) / dt)
		if lo < 0 {
			lo = 0
		}
		if hi > nt {
			hi = nt
		}
		eDown := fdtd.Energy(pPlus[lo:hi])
		eUp := fdtd.Energy(pMinus[lo:hi])
		ratio := 0.0
		if eDown > 0 {
			ratio = eUp / eDown
		}
		fmt.Printf("%9.0f %12.3f %12.3f %14.3e %14.3e %12.3f\n",
			offset, tFD, tRay, eDown, eUp, ratio)
	}
	fmt.Println()
	fmt.Println("near offsets are downgoing-dominated (small E ratios): wavefield")
	fmt.Println("separation isolates p+ for the MDC kernel, as §6.1 prescribes. The")
	fmt.Println("residual p- at the seafloor is the immediate water-bottom reflection")
	fmt.Println("(the receivers sit on the reflector), and the 1D separation degrades")
	fmt.Println("at wide angles where the cos(theta) obliquity factor is neglected —")
	fmt.Println("both effects the production workflow corrects in the f-k domain.")
}
