// Command benchreport produces and gates the repo's performance
// trajectory. `benchreport run` executes the curated benchmark set (the
// workloads behind the paper's §6–§7 tables, instrumented through
// internal/obs) and writes a schema-versioned JSON report;
// `benchreport compare` diffs two reports and exits non-zero when any
// gated metric regresses past the threshold — the check CI runs against
// the committed BENCH_baseline.json.
//
// Usage:
//
//	benchreport run [-o BENCH.json] [-label NAME] [-profile short|full]
//	benchreport compare [-threshold 0.10] [-gate-timing] OLD.json NEW.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/benchreport"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		runCmd(os.Args[2:])
	case "compare":
		compareCmd(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "benchreport: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  benchreport run [-o FILE] [-label NAME] [-profile short|full|smoke]
  benchreport compare [-threshold F] [-gate-timing] OLD.json NEW.json`)
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	out := fs.String("o", "BENCH.json", "output report path")
	label := fs.String("label", "dev", "run label (e.g. PR2, baseline)")
	profile := fs.String("profile", "short", "iteration profile: short, full, or smoke")
	fs.Parse(args)

	p, err := benchreport.Profiles(*profile)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchreport: running %s profile...\n", p.Name)
	rep, err := benchreport.Run(*label, p)
	if err != nil {
		fatal(err)
	}
	if err := rep.WriteFile(*out); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchreport: wrote %d metrics to %s (sha %.12s)\n",
		len(rep.Metrics), *out, rep.GitSHA)
}

func compareCmd(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.10, "relative regression threshold for gated metrics")
	gateTiming := fs.Bool("gate-timing", false, "also gate wall-clock metrics (same-host comparisons only)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
		os.Exit(2)
	}
	oldR, err := benchreport.ReadFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	newR, err := benchreport.ReadFile(fs.Arg(1))
	if err != nil {
		fatal(err)
	}
	res, err := benchreport.Compare(oldR, newR, benchreport.CompareOptions{
		Threshold: *threshold, GateTiming: *gateTiming,
	})
	if err != nil {
		fatal(err)
	}
	res.Format(os.Stdout)
	if !res.OK() {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchreport: %s\n",
		strings.TrimPrefix(err.Error(), "benchreport: "))
	os.Exit(1)
}
