// Command ablate runs the design-choice ablations DESIGN.md calls out:
//
//	-shuffle     three-phase (BSP, shuffle over the fabric) vs the
//	             communication-avoiding layout of §5.3
//	-strategies  strong-scaling strategy 1 vs 2 at matched scale (§6.7)
//	-precision   FP32 vs FP16 vs bfloat16 base storage ([23, 24])
//	-mmm         TLR-MVM per shot vs fused TLR-MMM (§8 future work)
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"repro/internal/adaptive"
	"repro/internal/bsp"
	"repro/internal/cfloat"
	"repro/internal/cgls"
	"repro/internal/cs2"
	"repro/internal/dense"
	"repro/internal/lsqr"
	"repro/internal/mdc"
	"repro/internal/mdd"
	"repro/internal/precision"
	"repro/internal/ranks"
	"repro/internal/seismic"
	"repro/internal/sfc"
	"repro/internal/tlr"
	"repro/internal/tlrmmm"
	"repro/internal/wse"
)

func shuffleAblation() {
	fmt.Println("== Ablation: three-phase (shuffle) vs communication-avoiding TLR-MVM ==")
	fmt.Println("(paper §5.3: the CS-2 port removes the shuffle phase that hurt the IPU port)")
	fmt.Printf("%4s %8s %6s %14s %16s %10s %14s\n",
		"nb", "acc", "sw", "3-phase (cyc)", "comm-avoid (cyc)", "speedup", "shuffle share")
	for _, c := range []struct {
		cfg ranks.Config
		sw  int
	}{
		{ranks.Config{NB: 25, Acc: 1e-4}, 64},
		{ranks.Config{NB: 50, Acc: 1e-4}, 32},
		{ranks.Config{NB: 70, Acc: 1e-4}, 23},
	} {
		d, err := ranks.New(c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		cmp, err := bsp.Compare(d, c.sw, bsp.DefaultFabric())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d %8.0e %6d %14d %16d %9.2fx %13.1f%%\n",
			c.cfg.NB, c.cfg.Acc, c.sw, cmp.ThreePhase.Total(), cmp.CommAvoiding,
			cmp.Speedup, cmp.ShuffleShare*100)
	}
	fmt.Println()
}

func strategiesAblation() {
	fmt.Println("== Ablation: strong-scaling strategy 1 vs 2 at 48 systems (§6.7) ==")
	cfg := ranks.Config{NB: 25, Acc: 1e-4}
	d, err := ranks.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	arch := cs2.DefaultArch()
	// strategy 1 must shrink the stack width to expose 48 systems' worth
	// of concurrency; strategy 2 keeps sw=64 and scatters MVMs
	s1sw := d.StackWidthFor(int64(48) * int64(arch.UsablePEs()))
	m1, err := wse.Plan{Dist: d, Arch: arch, StackWidth: s1sw, Systems: 48, Strategy: wse.Strategy1}.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	m2, err := wse.Plan{Dist: d, Arch: arch, StackWidth: 64, Systems: 48, Strategy: wse.Strategy2}.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%10s %6s %12s %14s %16s %12s\n", "strategy", "sw", "PEs", "worst cycles", "rel BW (PB/s)", "base memory")
	fmt.Printf("%10d %6d %12d %14d %16.2f %11.0fx\n", 1, m1.StackWidth, m1.PEsUsed, m1.WorstCycles, m1.RelativeBW/1e15, m1.BaseReplication)
	fmt.Printf("%10d %6d %12d %14d %16.2f %11.0fx\n", 2, m2.StackWidth, m2.PEsUsed, m2.WorstCycles, m2.RelativeBW/1e15, m2.BaseReplication)
	fmt.Println("(strategy 1 loses arithmetic intensity at tiny stack widths; strategy 2 pays 2x base memory)")
	fmt.Println()
}

func precisionAblation() {
	fmt.Println("== Ablation: base storage precision (mixed-precision TLR, [23, 24]) ==")
	tm, k := demoMatrix()
	rng := rand.New(rand.NewSource(3))
	x := dense.Random(rng, k.Cols, 1).Data
	ref := make([]complex64, k.Rows)
	tm.MulVec(x, ref)
	fmt.Printf("%22s %12s %12s %14s\n", "policy", "bytes", "savings", "MVM rel error")
	policies := []struct {
		name string
		p    precision.Policy
	}{
		{"uniform fp32", precision.Uniform{F: precision.FP32}},
		{"uniform fp16", precision.Uniform{F: precision.FP16}},
		{"uniform bf16", precision.Uniform{F: precision.BF16}},
		{"band0.2 + fp16 tail", precision.DiagonalBand{Band: 0.2, Demoted: precision.FP16}},
	}
	for _, pc := range policies {
		q, err := precision.Quantize(tm, pc.p)
		if err != nil {
			log.Fatal(err)
		}
		y := make([]complex64, k.Rows)
		q.T.MulVec(x, y)
		diff := make([]complex64, k.Rows)
		for i := range diff {
			diff[i] = y[i] - ref[i]
		}
		fmt.Printf("%22s %12d %11.0f%% %14.2e\n",
			pc.name, q.StoredBytes, q.Savings()*100, cfloat.Nrm2(diff)/cfloat.Nrm2(ref))
	}
	fmt.Println()
}

func mmmAblation() {
	fmt.Println("== Ablation: per-shot TLR-MVM loop vs fused TLR-MMM (§8) ==")
	tm, k := demoMatrix()
	rng := rand.New(rand.NewSource(4))
	fmt.Printf("%7s %14s %14s %16s %16s\n", "shots", "naive time", "fused time", "naive AI (F/B)", "fused AI (F/B)")
	for _, shots := range []int{1, 8, 32, 128} {
		x := dense.Random(rng, k.Cols, shots)
		y := dense.New(k.Rows, shots)
		t0 := time.Now()
		if err := tlrmmm.MulMatNaive(tm, x, y); err != nil {
			log.Fatal(err)
		}
		tn := time.Since(t0)
		t0 = time.Now()
		if err := tlrmmm.MulMatFusedParallel(tm, x, y, 0); err != nil {
			log.Fatal(err)
		}
		tf := time.Since(t0)
		fmt.Printf("%7d %14s %14s %16.2f %16.2f\n", shots,
			tn.Round(time.Microsecond), tf.Round(time.Microsecond),
			tlrmmm.NaiveTraffic(tm, shots).Intensity,
			tlrmmm.FusedTraffic(tm, shots).Intensity)
	}
	// crossover on a CS-2: ridge = 1.7 PFlop/s / 20 PB/s = 0.085 flop/B
	if s := tlrmmm.CrossoverShots(tm, 20e15, 1.7e15); s > 0 {
		fmt.Printf("shots to leave the CS-2's memory-bound regime: %d\n", s)
	} else {
		fmt.Println("the fused schedule stays memory-bound on a CS-2 at any shot count")
	}
	fmt.Println()
}

// demoMatrix compresses one Hilbert-sorted frequency matrix of a mid-size
// survey.
func demoMatrix() (*tlr.Matrix, *dense.Matrix) {
	ds, err := seismic.Generate(seismic.Options{
		Geom: seismic.Geometry{
			NsX: 16, NsY: 10, NrX: 14, NrY: 8,
			Dx: 20, Dy: 20, SrcDepth: 10, RecDepth: 300,
		},
		Wavelet: seismic.FlatWavelet{Fmax: 30},
		Nt:      256, Dt: 0.004,
	})
	if err != nil {
		log.Fatal(err)
	}
	hds, _ := ds.Reorder(sfc.Hilbert)
	k := hds.K[hds.NumFreqs()/2]
	tm, err := tlr.Compress(k, tlr.Options{NB: 20, Tol: 1e-3})
	if err != nil {
		log.Fatal(err)
	}
	return tm, k
}

func solversAblation() {
	fmt.Println("== Ablation: LSQR vs CGLS on the MDD inversion ==")
	ds, err := seismic.Generate(seismic.Options{
		Geom: seismic.Geometry{
			NsX: 12, NsY: 8, NrX: 10, NrY: 6,
			Dx: 20, Dy: 20, SrcDepth: 10, RecDepth: 300,
		},
		Nt: 256, Dt: 0.004,
	})
	if err != nil {
		log.Fatal(err)
	}
	hds, _ := ds.Reorder(sfc.Hilbert)
	dk, err := mdc.NewDenseKernel(hds.K)
	if err != nil {
		log.Fatal(err)
	}
	prob, err := mdd.NewProblem(hds, dk)
	if err != nil {
		log.Fatal(err)
	}
	vs := ds.Geom.NumReceivers() / 2
	op := prob.Operator()
	y := prob.Data(vs)
	fmt.Printf("%8s %8s %14s %14s %12s\n", "solver", "iters", "residual", "NMSE", "time")
	for _, iters := range []int{10, 30} {
		t0 := time.Now()
		rl, err := lsqr.Solve(op, y, lsqr.Options{MaxIters: iters, ATol: 1e-16, BTol: 1e-16})
		if err != nil {
			log.Fatal(err)
		}
		tl := time.Since(t0)
		t0 = time.Now()
		rc, err := cgls.Solve(op, y, cgls.Options{MaxIters: iters, Tol: 1e-16})
		if err != nil {
			log.Fatal(err)
		}
		tc := time.Since(t0)
		fmt.Printf("%8s %8d %14.3e %14.4f %12s\n", "lsqr", rl.Iters, rl.ResidualNorm,
			prob.NMSEAgainstTruth(rl.X, vs), tl.Round(time.Millisecond))
		fmt.Printf("%8s %8d %14.3e %14.4f %12s\n", "cgls", rc.Iters, rc.ResidualNorm,
			prob.NMSEAgainstTruth(rc.X, vs), tc.Round(time.Millisecond))
	}
	fmt.Println()
}

func demultipleAblation() {
	fmt.Println("== Ablation: MDD vs predict-and-subtract demultiple (§3 context) ==")
	ds, err := seismic.Generate(seismic.DemoOptions())
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Geom
	r := g.ReceiverIndex(g.NrX/2, g.NrY/2)
	// upgoing zero-offset-ish trace for the nearest source
	sec := ds.ZeroOffsetSection(g.NrY/2, func(f, rr, ss int) complex64 {
		return ds.Pminus[f].At(rr, ss)
	})
	trace := sec.Traces[g.NrX/2]
	twt := 2 * g.RecDepth / ds.Model.WaterVel
	pred := adaptive.PredictWaterLayerMultiples(trace, twt, ds.Dt, ds.Model.WaterBottomRefl, 3)
	out, filt, err := adaptive.Subtract(trace, pred, 9, 1e-4)
	if err != nil {
		log.Fatal(err)
	}
	lateIdx := int(1.15 / ds.Dt)
	before := adaptive.EnergyRatio(trace[lateIdx:], trace[:lateIdx])
	after := adaptive.EnergyRatio(out[lateIdx:], out[:lateIdx])
	fmt.Printf("receiver %d: late/early energy %.4f → %.4f after predict+subtract (filter %d taps)\n",
		r, before, after, len(filt))
	fmt.Println("(MDD removes the same multiples implicitly by deconvolving p+ out of p-;")
	fmt.Println(" predict-and-subtract needs the multiple mechanism known a priori)")
	fmt.Println()
}

func main() {
	log.SetFlags(0)
	all := flag.Bool("all", false, "run every ablation")
	sh := flag.Bool("shuffle", false, "three-phase vs communication-avoiding")
	st := flag.Bool("strategies", false, "strategy 1 vs strategy 2")
	pr := flag.Bool("precision", false, "base storage precision")
	mm := flag.Bool("mmm", false, "TLR-MVM loop vs fused TLR-MMM")
	so := flag.Bool("solvers", false, "LSQR vs CGLS")
	dm := flag.Bool("demultiple", false, "MDD vs predict-and-subtract")
	flag.Parse()
	if !(*all || *sh || *st || *pr || *mm || *so || *dm) {
		flag.Usage()
		os.Exit(2)
	}
	if *all || *sh {
		shuffleAblation()
	}
	if *all || *st {
		strategiesAblation()
	}
	if *all || *pr {
		precisionAblation()
	}
	if *all || *mm {
		mmmAblation()
	}
	if *all || *so {
		solversAblation()
	}
	if *all || *dm {
		demultipleAblation()
	}
}
