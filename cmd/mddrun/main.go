// Command mddrun runs the end-to-end Multi-Dimensional Deconvolution
// pipeline on the synthetic ocean-bottom dataset and regenerates the
// qualitative results of the paper:
//
//	-fig11   single virtual source: adjoint vs inversion at tight and
//	         loose compression accuracy vs ground truth, with NMSE and
//	         trace diagnostics (Fig. 11).
//	-fig13   a line of virtual sources along a fixed crossline: the
//	         zero-offset sections of the full, upgoing, and MDD data,
//	         with the free-surface-multiple energy suppression quantified
//	         (Fig. 13).
//	-faultdemo
//	         fault-tolerant sharded inversion: the frequency fan-out runs
//	         over -shards simulated CS-2 systems while the deterministic
//	         -faults schedule kills, fails, or corrupts them; the solve
//	         survives via re-sharding plus checkpoint resume every
//	         -ckpt-interval iterations and is compared against the
//	         fault-free single-system result.
//	-store   out-of-core operator demo: a frequency band is compressed,
//	         written to a paged tile store with an fp16 off-band storage
//	         tier, reopened under a byte budget far below the operator
//	         size, and swept product-by-product — cache traffic, resident
//	         bytes, and the analytic estimator's predicted NMSE bound
//	         against the measured error are printed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/fault"
	"repro/internal/lsqr"
	"repro/internal/mdd"
	"repro/internal/obs"
	"repro/internal/opstore"
	"repro/internal/precision"
	"repro/internal/render"
	"repro/internal/seismic"
	"repro/internal/sfc"
	"repro/internal/testkit"
	"repro/internal/tlr"
	"repro/internal/tlrio"
)

// savePanel writes a gather as a PGM figure panel if outDir is set.
func savePanel(outDir, name string, g *seismic.Gather) {
	if outDir == "" {
		return
	}
	path := filepath.Join(outDir, name+".pgm")
	img := render.GatherImage(g, 4, 0.4)
	if err := img.SavePGM(path); err != nil {
		log.Fatalf("writing %s: %v", path, err)
	}
	fmt.Printf("  wrote %s (%dx%d)\n", path, img.W, img.H)
}

func fig11(iters int, outDir string) {
	fmt.Println("== Fig. 11: MDD on a single virtual source ==")
	opts := seismic.DemoOptions()
	vs := opts.Geom.NumReceivers() / 2

	var panels *core.Pipeline
	run := func(label, panel string, acc float64) *core.MDDReport {
		pipe, err := core.BuildPipeline(core.PipelineOptions{
			Dataset: opts, TileSize: 48, Accuracy: acc,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := pipe.RunMDD(vs, iters)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s adjoint NMSE %.4f | inversion NMSE %.4f | iters %d | compression %.2fx\n",
			label, rep.AdjointNMSE, rep.InversionNMSE, rep.Iterations, pipe.CompressionRatio())
		savePanel(outDir, panel, pipe.Problem.Gather(rep.Solution))
		panels = pipe
		return rep
	}

	tight := run("a/b) nb=48, acc=1e-4 (tight):", "fig11b_inverse_tight", 1e-4)
	loose := run("c)   nb=48, acc=7e-2 (loose):", "fig11c_inverse_loose", 7e-2)
	if outDir != "" {
		savePanel(outDir, "fig11a_adjoint", panels.Problem.Gather(loose.Adjoint))
		savePanel(outDir, "fig11d_truth", panels.Problem.Gather(panels.Problem.TrueReflectivity(vs)))
	}
	fmt.Println()
	fmt.Println("paper's qualitative claims, checked:")
	okCross := tight.InversionNMSE < tight.AdjointNMSE
	fmt.Printf("  inversion beats cross-correlation:  %v (%.4f < %.4f)\n",
		okCross, tight.InversionNMSE, tight.AdjointNMSE)
	okAcc := loose.InversionNMSE > tight.InversionNMSE
	fmt.Printf("  loose acc adds noise to solution:   %v (%.4f > %.4f)\n",
		okAcc, loose.InversionNMSE, tight.InversionNMSE)
	fmt.Println()
}

func fig13(iters int, outDir string) {
	fmt.Println("== Fig. 13: zero-offset sections along a fixed crossline ==")
	opts := seismic.DemoOptions()
	pipe, err := core.BuildPipeline(core.PipelineOptions{
		Dataset: opts, TileSize: 48, Accuracy: 1e-3,
	})
	if err != nil {
		log.Fatal(err)
	}
	ds := pipe.DS
	g := ds.Geom
	iy := g.NrY / 2

	// full data p = p+ + p−: the downgoing K is stored (sources ×
	// receivers); at the co-located pair the full pressure combines both.
	full := ds.ZeroOffsetSection(iy, func(f, r, s int) complex64 {
		return ds.K[f].At(s, r) + ds.Pminus[f].At(r, s)
	})
	up := ds.ZeroOffsetSection(iy, func(f, r, s int) complex64 {
		return ds.Pminus[f].At(r, s)
	})

	// MDD data: invert every virtual source along the crossline, then
	// extract each virtual source's zero-offset (self) trace.
	vss := make([]int, g.NrX)
	for ix := 0; ix < g.NrX; ix++ {
		vss[ix] = g.ReceiverIndex(ix, iy)
	}
	fmt.Printf("inverting %d virtual sources in parallel (the paper uses 177 across 708 GPUs)...\n", len(vss))
	sols, err := pipe.Problem.InvertLine(vss, lsqr.Options{MaxIters: iters}, 0)
	if err != nil {
		log.Fatal(err)
	}
	nr := g.NumReceivers()
	mddSec := &seismic.Gather{Dt: ds.Dt}
	truthSec := &seismic.Gather{Dt: ds.Dt}
	for i, sol := range sols {
		spec := make([]complex64, ds.NumFreqs())
		specT := make([]complex64, ds.NumFreqs())
		for f := 0; f < ds.NumFreqs(); f++ {
			spec[f] = sol.X[f*nr+vss[i]]
			specT[f] = ds.Rtrue[f].At(vss[i], vss[i])
		}
		mddSec.Traces = append(mddSec.Traces, ds.TimeSeries(spec))
		truthSec.Traces = append(truthSec.Traces, ds.TimeSeries(specT))
	}

	// The water column is 300 m, so the free-surface multiple period is
	// ≈ 2·300/1500 = 0.4 s. The deepest upgoing primary arrives by
	// ≈ 1.1 s; the 1.15–2.0 s window therefore contains only water-layer
	// multiples in the upgoing data, which MDD must suppress.
	tMul0, tMul1 := 1.15, 2.0
	norm := func(sec *seismic.Gather) float64 {
		tot := sec.Energy()
		if tot == 0 {
			return 0
		}
		return sec.WindowEnergy(tMul0, tMul1) / tot
	}
	fmt.Println()
	fmt.Printf("%-28s %14s %22s\n", "section", "total energy", "late-window fraction")
	fmt.Printf("%-28s %14.4g %21.2f%%\n", "full data (p+ + p-)", full.Energy(), 100*norm(full))
	fmt.Printf("%-28s %14.4g %21.2f%%\n", "upgoing data (p-)", up.Energy(), 100*norm(up))
	fmt.Printf("%-28s %14.4g %21.2f%%\n", "MDD local reflectivity", mddSec.Energy(), 100*norm(mddSec))
	fmt.Printf("%-28s %14.4g %21.2f%%\n", "true local reflectivity", truthSec.Energy(), 100*norm(truthSec))
	fmt.Println()
	fmt.Printf("MDD vs truth NMSE over the section: %.4f\n",
		seismic.NMSEReal(mddSec.Flatten(), truthSec.Flatten()))
	fmt.Println("(free-surface multiples populate the upgoing late window; MDD suppresses them toward the true reflectivity's level)")
	if outDir != "" {
		// velocity-model panel (Fig. 13's first panel), then the sections
		img := render.VelocityImage(ds.Model, 200, 220, 10)
		path := filepath.Join(outDir, "fig13a_velocity.pgm")
		if err := img.SavePGM(path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote %s (%dx%d)\n", path, img.W, img.H)
		savePanel(outDir, "fig13b_full", full)
		savePanel(outDir, "fig13c_upgoing", up)
		savePanel(outDir, "fig13d_mdd", mddSec)
		savePanel(outDir, "fig13e_truth", truthSec)
	}
	fmt.Println()
}

func faultDemo(iters, shards int, schedule string, ckptInterval int) {
	fmt.Println("== Fault-tolerant sharded MDD ==")
	sched, err := fault.Parse(schedule)
	if err != nil {
		log.Fatal(err)
	}
	opts := seismic.DemoOptions()
	vs := opts.Geom.NumReceivers() / 2
	pipe, err := core.BuildPipeline(core.PipelineOptions{
		Dataset: opts, TileSize: 48, Accuracy: 1e-4,
	})
	if err != nil {
		log.Fatal(err)
	}
	b := pipe.Problem.Data(vs)

	// fault-free single-system reference
	ref, err := pipe.Problem.Invert(vs, lsqr.Options{MaxIters: iters})
	if err != nil {
		log.Fatal(err)
	}

	// sharded execution with the schedule injected at shard and operator level
	op, err := pipe.Problem.ShardedOperator(shards)
	if err != nil {
		log.Fatal(err)
	}
	inj := fault.NewInjector(sched)
	op.Intercept = fault.Shard(inj)
	wrapped := fault.WrapOperator(op, inj, "op")

	obs.Enable()
	obs.Reset()
	out, err := mdd.InvertResilient(wrapped, b, mdd.ResilientOptions{
		LSQR:               lsqr.Options{MaxIters: iters},
		CheckpointInterval: ckptInterval,
		MaxRestarts:        2 * len(sched),
	})
	if err != nil {
		log.Fatalf("resilient solve did not survive the schedule: %v", err)
	}
	snap := obs.TakeSnapshot()
	obs.Disable()

	fmt.Printf("shards %d | schedule %q | checkpoint every %d iters\n", shards, sched.String(), ckptInterval)
	fmt.Printf("solve completed: %d iters, %d restarts, %d iterations salvaged from checkpoints\n",
		out.Result.Iters, out.Restarts, out.SalvagedIters)
	fmt.Printf("shards alive after run: %d of %d\n", op.Runner.Alive(), shards)
	fmt.Printf("relative error vs fault-free solve: %.3g\n", testkit.RelErr(out.Result.X, ref.LSQR.X))
	fmt.Printf("NMSE vs true reflectivity: faulted %.4f | fault-free %.4f\n",
		pipe.Problem.NMSEAgainstTruth(out.Result.X, vs), pipe.Problem.NMSEAgainstTruth(ref.LSQR.X, vs))
	fmt.Printf("recovery counters: retries %d | failovers %d | deaths %d | injected %d\n",
		snap.Counter("batch.shard.retries"), snap.Counter("batch.shard.failovers"),
		snap.Counter("batch.shard.deaths"), snap.Counter("fault.injected"))
	fmt.Println()
}

// storeDemo is the worked out-of-core example: a band of frequency
// slices compressed, written to a paged tile store with fp16 off-band
// storage tiers, and swept through under a budget far below the
// operator's footprint, with the analytic estimator's predicted bound
// checked against the measured error on the spot.
func storeDemo(storePath string, budget int64) {
	fmt.Println("== Out-of-core tiered operator store ==")
	const (
		nFreqs = 8
		nb     = 48
		acc    = 1e-4
	)
	pol := precision.DiagonalBand{Band: 0.3, Demoted: precision.FP16}

	opts := seismic.DemoOptions()
	ds, err := seismic.Generate(opts)
	if err != nil {
		log.Fatal(err)
	}
	hds, _ := ds.Reorder(sfc.Hilbert)
	fmt.Printf("survey: %d sources x %d receivers, %d frequency slices (storing %d)\n",
		opts.Geom.NumSources(), opts.Geom.NumReceivers(), hds.NumFreqs(), nFreqs)

	k := &tlrio.Kernel{}
	base := hds.NumFreqs()/2 - nFreqs/2
	for f := base; f < base+nFreqs; f++ {
		tm, err := tlr.Compress(hds.K[f], tlr.Options{NB: nb, Tol: acc})
		if err != nil {
			log.Fatal(err)
		}
		k.Freqs = append(k.Freqs, hds.Freqs[f])
		k.Mats = append(k.Mats, tm)
	}
	var compressed int64
	for _, tm := range k.Mats {
		compressed += tm.CompressedBytes()
	}
	if budget <= 0 {
		budget = compressed / 4
	}

	if storePath == "" {
		dir, err := os.MkdirTemp("", "mddrun-store")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		storePath = filepath.Join(dir, "band.tlrp")
	}
	if err := opstore.WriteFile(storePath, k, pol); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(storePath)
	if err != nil {
		log.Fatal(err)
	}
	st, err := opstore.OpenFile(storePath, budget)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	fmt.Printf("store: %s | page file %d B | compressed operator %d B | cache budget %d B (%.0f%% of operator)\n",
		storePath, info.Size(), compressed, budget, 100*float64(budget)/float64(compressed))

	obs.Enable()
	obs.Reset()
	rng := testkit.NewRNG(42)
	var worst float64
	for f := range k.Mats {
		ooc, err := st.Matrix(f)
		if err != nil {
			log.Fatal(err)
		}
		x := testkit.Vec(rng, ooc.N)
		y := make([]complex64, ooc.M)
		ooc.MulVec(x, y)
		// measured error of the store-backed (fp16-demoted) product
		// against the dense reference slice
		want := make([]complex64, ooc.M)
		hds.K[base+f].MulVec(x, want)
		if e := testkit.RelErr(y, want); e > worst {
			worst = e
		}
	}
	snap := obs.TakeSnapshot()
	obs.Disable()

	stats := st.Stats()
	fmt.Printf("swept %d products: hits %d | misses %d | evictions %d | resident %d B (budget %d B)\n",
		len(k.Mats), stats.Hits, stats.Misses, stats.Evictions, stats.ResidentBytes, stats.Budget)
	fmt.Printf("obs counters: opstore.hits %d | opstore.misses %d | opstore.evictions %d | opstore.bytes_resident %d\n",
		snap.Counter("opstore.hits"), snap.Counter("opstore.misses"),
		snap.Counter("opstore.evictions"), gaugeOrZero(snap, "opstore.bytes_resident"))

	m0 := k.Mats[0]
	pred, err := estimator.Predict(estimator.Config{
		M: m0.M, N: m0.N, NB: nb, Acc: acc, Policy: pol,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimator: predicted NMSE bound %.3g (rel err bound %.3g, %.0f%% of tiles demoted to fp16)\n",
		pred.NMSEBound, pred.RelErrBound, 100*pred.DemotedFrac)
	fmt.Printf("measured:  worst NMSE %.3g (rel err %.3g) — bound holds: %v\n",
		worst*worst, worst, worst*worst <= pred.NMSEBound)
	fmt.Println()
}

// gaugeOrZero reads a gauge from a snapshot, defaulting to 0.
func gaugeOrZero(snap obs.Snapshot, name string) int64 {
	v, _ := snap.Gauge(name)
	return v
}

// validateFlags rejects nonsensical numeric flags before any dataset is
// generated. A zero shard count would divide the frequency fan-out by
// nothing and a nonpositive checkpoint interval would make the
// resilient solver checkpoint never (or spin), so both fail at startup
// with the flag named.
func validateFlags(iters, shards, ckptInterval int, storeBudget int64) error {
	if iters < 1 {
		return fmt.Errorf("-iters must be at least 1 (got %d)", iters)
	}
	if shards < 1 {
		return fmt.Errorf("-shards must be at least 1 (got %d)", shards)
	}
	if ckptInterval < 1 {
		return fmt.Errorf("-ckpt-interval must be at least 1 (got %d)", ckptInterval)
	}
	if storeBudget < 0 {
		return fmt.Errorf("-store-budget must not be negative (got %d; 0 means a quarter of the operator)", storeBudget)
	}
	return nil
}

func main() {
	log.SetFlags(0)
	f11 := flag.Bool("fig11", false, "single-virtual-source MDD (Fig. 11)")
	f13 := flag.Bool("fig13", false, "zero-offset section line (Fig. 13)")
	fdemo := flag.Bool("faultdemo", false, "fault-tolerant sharded MDD under an injected fault schedule")
	fstore := flag.Bool("store", false, "out-of-core tiered operator store demo with the analytic noise estimator")
	storePath := flag.String("store-path", "", "page file for -store (default: a temp file, removed after the run)")
	storeBudget := flag.Int64("store-budget", 0, "tile-cache resident-byte budget for -store (0 = a quarter of the operator)")
	iters := flag.Int("iters", 30, "LSQR iterations")
	outDir := flag.String("out", "", "directory for PGM figure panels (optional)")
	shards := flag.Int("shards", 8, "simulated CS-2 shard count for -faultdemo")
	faults := flag.String("faults", "shard2:die@3,shard5:die@5",
		"fault schedule (target:kind@invocation[:duration], comma-separated; kinds err|die|nan|latency)")
	ckptInterval := flag.Int("ckpt-interval", 5, "iterations between solver checkpoints for -faultdemo")
	flag.Parse()
	if !*f11 && !*f13 && !*fdemo && !*fstore {
		flag.Usage()
		os.Exit(2)
	}
	if err := validateFlags(*iters, *shards, *ckptInterval, *storeBudget); err != nil {
		log.Fatalf("mddrun: %v", err)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	if *f11 {
		fig11(*iters, *outDir)
	}
	if *f13 {
		fig13(*iters, *outDir)
	}
	if *fdemo {
		faultDemo(*iters, *shards, *faults, *ckptInterval)
	}
	if *fstore {
		storeDemo(*storePath, *storeBudget)
	}
}
