package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name         string
		iters        int
		shards       int
		ckptInterval int
		storeBudget  int64
		wantErr      string // "" means the flags must be accepted
	}{
		{"defaults", 30, 8, 5, 0, ""},
		{"minimal", 1, 1, 1, 0, ""},
		{"explicit budget", 30, 8, 5, 1 << 20, ""},
		{"zero iters", 0, 8, 5, 0, "-iters"},
		{"negative iters", -4, 8, 5, 0, "-iters"},
		{"zero shards", 30, 0, 5, 0, "-shards"},
		{"negative shards", 30, -2, 5, 0, "-shards"},
		{"zero ckpt interval", 30, 8, 0, 0, "-ckpt-interval"},
		{"negative ckpt interval", 30, 8, -5, 0, "-ckpt-interval"},
		{"negative store budget", 30, 8, 5, -1, "-store-budget"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.iters, tc.shards, tc.ckptInterval, tc.storeBudget)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFlags(%d, %d, %d, %d) = %v, want nil",
						tc.iters, tc.shards, tc.ckptInterval, tc.storeBudget, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateFlags(%d, %d, %d, %d) = nil, want error naming %s",
					tc.iters, tc.shards, tc.ckptInterval, tc.storeBudget, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the offending flag %s", err, tc.wantErr)
			}
		})
	}
}
