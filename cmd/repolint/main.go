// Command repolint runs the repo's domain-invariant static analysis
// suite (internal/analysis) over the module. It operates in two modes:
//
// Standalone (the `make lint` entry point):
//
//	repolint [-only a,b] [./...]
//
// loads the whole module from source — no export data, no third-party
// packages — and runs every analyzer, including the module-scoped
// oraclereg pass that cross-references kernel entry points against the
// internal/testkit differential oracle. Package patterns are accepted
// for familiarity but the whole module is always analyzed: the
// analyzers' rules are module-wide invariants.
//
// Vettool (unitchecker) mode:
//
//	go vet -vettool=$(command -v repolint) ./...
//
// speaks cmd/go's vet protocol: go vet invokes the tool once per
// package with a JSON .cfg file describing sources and export data, and
// the tool type-checks against the compiler's export files. Module-
// scoped analyzers are skipped in this mode (each invocation sees one
// package); everything else runs identically.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	progname := filepath.Base(os.Args[0])

	// cmd/go probes vettools before use: `tool -V=full` must print a
	// stable identification line, and `tool -flags` the supported
	// analyzer flags as JSON.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			// cmd/go parses this line for its action cache key; the
			// shape (version devel ... buildID=...) is the one
			// x/tools' unitchecker prints for unstamped builds.
			fmt.Printf("%s version devel comments-go-here buildID=gibberish_as_fallback\n", progname)
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}

	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	catalog := flag.Bool("catalog", false, "print the analyzer catalog as JSON and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-only names] [packages]\n       %s <vet>.cfg   (go vet -vettool mode)\n\nanalyzers:\n", progname, progname)
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-18s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *catalog {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(analysis.Catalog()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	analyzers, err := analysis.ByName(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnitchecker(analyzers, args[0]))
	}
	os.Exit(runStandalone(analyzers))
}

// runStandalone analyzes the whole module rooted at the working
// directory. Exit status: 0 clean, 1 diagnostics, 2 operational error.
func runStandalone(analyzers []*analysis.Analyzer) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	// The driver loads and type-checks the module exactly once; every
	// analyzer (and every Module.Cached artifact: call graph, summaries,
	// escape info) shares that single load.
	diags, mod, err := (&analysis.Driver{}).Run(wd, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		return 2
	}

	// Fixture drift guard: when the analyzed module is the one that hosts
	// the analysis suite itself, every registered analyzer must ship a
	// `// want` fixture module — a new analyzer cannot land unpinned.
	if pkg := mod.PackageBySuffix("internal/analysis"); pkg != nil {
		if missing := analysis.MissingFixtures(filepath.Join(pkg.Dir, "testdata")); len(missing) > 0 {
			fmt.Fprintf(os.Stderr, "repolint: analyzers without testdata fixture modules: %s\n", strings.Join(missing, ", "))
			return 1
		}
	}
	for _, d := range diags {
		pos := mod.Fset.Position(d.Pos)
		rel, err := filepath.Rel(wd, pos.Filename)
		if err != nil || strings.HasPrefix(rel, "..") {
			rel = pos.Filename
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", rel, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d issue(s)\n", len(diags))
		return 1
	}
	return 0
}
