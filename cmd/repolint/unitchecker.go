package main

// The `go vet -vettool` protocol, implemented on the standard library.
//
// cmd/go invokes the vettool once per package with a single argument, a
// JSON "vet config" file describing the package's sources and the
// export-data files of its dependencies, and expects:
//
//   - diagnostics on stderr as file:line:col: message, exit 2 when any;
//   - an (analysis-facts) output file written to VetxOutput — we carry
//     no cross-package facts, so ours is an empty placeholder;
//   - exit 0 and facts only when VetxOnly is set (dependency visits).
//
// Type-checking uses go/importer's gc importer fed by the PackageFile
// map, the same export data the compiler produced — so vettool runs are
// fast and agree exactly with the build.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

// vetConfig mirrors the fields cmd/go writes into vet.cfg (a superset is
// tolerated; unknown fields are ignored by encoding/json).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnitchecker(analyzers []*analysis.Analyzer, cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: reading vet config: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "repolint: parsing vet config %s: %v\n", cfgPath, err)
		return 2
	}

	// Always produce the facts file first: go vet requires it to exist
	// even when the analysis finds problems or is facts-only.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("repolint-no-facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "repolint: writing facts: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
			return 2
		}
		files = append(files, f)
	}

	imp := newVetImporter(fset, &cfg)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tconf := types.Config{Importer: imp}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "repolint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	pkg := &analysis.Package{Path: cfg.ImportPath, Dir: cfg.Dir, Files: files, Types: tpkg, Info: info}
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		if a.NeedsModule {
			continue // needs the whole module; standalone mode covers it
		}
		pass := analysis.NewPass(a, fset, pkg, nil, &diags)
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "repolint: %s on %s: %v\n", a.Name, cfg.ImportPath, err)
			return 2
		}
	}
	analysis.SortDiagnostics(fset, diags)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// newVetImporter builds an importer that resolves import paths through
// the vet config's ImportMap and reads dependency types from the
// compiler export data in PackageFile.
func newVetImporter(fset *token.FileSet, cfg *vetConfig) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q in vet config", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	gc := importer.ForCompiler(fset, compiler, lookup)
	return &mappedImporter{m: cfg.ImportMap, under: gc}
}

type mappedImporter struct {
	m     map[string]string
	under types.Importer
}

func (mi *mappedImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if canon, ok := mi.m[path]; ok {
		path = canon
	}
	// Strip any test-variant decoration cmd/go may carry in the map.
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return mi.under.Import(path)
}
