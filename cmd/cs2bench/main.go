// Command cs2bench regenerates the paper's Cerebras CS-2 performance
// results on the machine model: Fig. 14 (tile-size bandwidth sweep),
// Table 1 (occupancy), Table 2 (worst cycles / memory accesses), Table 3
// (six-shard bandwidths), Table 4 (strong scaling), Table 5 (48-shard
// runs), and the §7.6 power profile.
//
// Usage:
//
//	cs2bench -all
//	cs2bench -fig14 -table3
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cs2"
	"repro/internal/ranks"
	"repro/internal/wse"
)

var distCache = map[ranks.Config]*ranks.Distribution{}

func dist(cfg ranks.Config) *ranks.Distribution {
	if d, ok := distCache[cfg]; ok {
		return d
	}
	d, err := ranks.New(cfg)
	if err != nil {
		log.Fatalf("calibrating %v: %v", cfg, err)
	}
	distCache[cfg] = d
	return d
}

func eval(cfg ranks.Config, sw, systems int, s wse.Strategy) *wse.Metrics {
	m, err := wse.Plan{
		Dist: dist(cfg), Arch: cs2.DefaultArch(),
		StackWidth: sw, Systems: systems, Strategy: s,
	}.Evaluate()
	if err != nil {
		log.Fatalf("evaluating %v sw=%d: %v", cfg, sw, err)
	}
	return m
}

var fiveConfigs = []struct {
	cfg ranks.Config
	sw  int
}{
	{ranks.Config{NB: 25, Acc: 1e-4}, 64},
	{ranks.Config{NB: 50, Acc: 1e-4}, 32},
	{ranks.Config{NB: 70, Acc: 1e-4}, 23},
	{ranks.Config{NB: 50, Acc: 3e-4}, 18},
	{ranks.Config{NB: 70, Acc: 3e-4}, 14},
}

func fig14() {
	fmt.Println("== Fig. 14: tile size vs aggregate bandwidth (one CS-2, constant-size NxN MVM per PE) ==")
	fmt.Printf("%6s %10s %16s %16s\n", "N", "cycles", "relative (PB/s)", "absolute (PB/s)")
	sizes := []int{8, 12, 16, 24, 32, 48, 64, 96, 128}
	for _, p := range wse.SyntheticTileSweep(cs2.DefaultArch(), sizes) {
		fmt.Printf("%6d %10d %16.3f %16.3f\n", p.N, p.Cycles, p.RelativeBW/1e15, p.AbsoluteBW/1e15)
	}
	fmt.Println()
}

func table1() {
	fmt.Println("== Table 1: configurations delivering proper MDD accuracy (6 shards, strategy 1) ==")
	fmt.Printf("%4s %8s %12s %12s %10s\n", "nb", "acc", "stack width", "PEs used", "occupancy")
	for _, c := range fiveConfigs {
		m := eval(c.cfg, c.sw, 6, wse.Strategy1)
		fmt.Printf("%4d %8.0e %12d %12d %9.0f%%\n",
			c.cfg.NB, c.cfg.Acc, c.sw, m.PEsUsed, m.Occupancy*100)
	}
	fmt.Println()
}

func table2() {
	fmt.Println("== Table 2: worst cycle count / memory accesses (bytes) ==")
	fmt.Printf("%4s %8s %12s %18s %18s\n", "nb", "acc", "worst cycles", "relative accesses", "absolute accesses")
	for _, c := range fiveConfigs {
		m := eval(c.cfg, c.sw, 6, wse.Strategy1)
		fmt.Printf("%4d %8.0e %12d %18.3e %18.3e\n",
			c.cfg.NB, c.cfg.Acc, m.WorstCycles, float64(m.RelativeBytes), float64(m.AbsoluteBytes))
	}
	fmt.Println()
}

func table3() {
	fmt.Println("== Table 3: aggregate bandwidth metrics on six shards ==")
	fmt.Printf("%4s %8s %16s %16s %10s\n", "nb", "acc", "agg rel (PB/s)", "agg abs (PB/s)", "PFlop/s")
	for _, c := range fiveConfigs {
		m := eval(c.cfg, c.sw, 6, wse.Strategy1)
		fmt.Printf("%4d %8.0e %16.2f %16.2f %10.2f\n",
			c.cfg.NB, c.cfg.Acc, m.RelativeBW/1e15, m.AbsoluteBW/1e15, m.FlopRate/1e15)
	}
	fmt.Println()
}

func table4() {
	fmt.Println("== Table 4: strong scaling, nb=25 acc=1e-4 ==")
	cfg := ranks.Config{NB: 25, Acc: 1e-4}
	fmt.Printf("%7s %6s %10s %16s %16s %10s %11s\n",
		"shards", "sw", "strategy", "agg rel (PB/s)", "agg abs (PB/s)", "PFlop/s", "efficiency")
	base := eval(cfg, 64, 6, wse.Strategy1)
	rows := []struct {
		shards, sw int
		strat      wse.Strategy
	}{
		{6, 64, wse.Strategy1},
		{12, 32, wse.Strategy1},
		{16, 24, wse.Strategy1},
		{20, 19, wse.Strategy1},
		{48, 64, wse.Strategy2},
	}
	for _, r := range rows {
		m := eval(cfg, r.sw, r.shards, r.strat)
		fmt.Printf("%7d %6d %10d %16.2f %16.2f %10.2f %10.0f%%\n",
			r.shards, r.sw, int(r.strat), m.RelativeBW/1e15, m.AbsoluteBW/1e15,
			m.FlopRate/1e15, wse.ParallelEfficiency(base, m)*100)
	}
	fmt.Println()
}

func table5() {
	fmt.Println("== Table 5: 48-shard runs, strategy 2, acc=1e-4 ==")
	fmt.Printf("%4s %6s %7s %16s %16s %10s %11s\n",
		"nb", "sw", "shards", "agg rel (PB/s)", "agg abs (PB/s)", "PFlop/s", "time (us)")
	rows := []struct {
		cfg        ranks.Config
		sw, shards int
	}{
		{ranks.Config{NB: 25, Acc: 1e-4}, 64, 48},
		{ranks.Config{NB: 50, Acc: 1e-4}, 32, 47},
		{ranks.Config{NB: 70, Acc: 1e-4}, 23, 48},
	}
	for _, r := range rows {
		m := eval(r.cfg, r.sw, r.shards, wse.Strategy2)
		fmt.Printf("%4d %6d %7d %16.2f %16.2f %10.2f %11.3f\n",
			r.cfg.NB, r.sw, r.shards, m.RelativeBW/1e15, m.AbsoluteBW/1e15,
			m.FlopRate/1e15, m.TimeSeconds*1e6)
	}
	fmt.Println()
}

func power() {
	fmt.Println("== §7.6: power profile of one CS-2 (nb=25, acc=1e-4, sw=64) ==")
	cfg := ranks.Config{NB: 25, Acc: 1e-4}
	p := wse.Plan{Dist: dist(cfg), Arch: cs2.DefaultArch(), StackWidth: 64, Systems: 6, Strategy: wse.Strategy1}
	m, err := p.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	rep := p.Power(m)
	fmt.Printf("sustained power:     %8.1f kW   (paper: 16 kW)\n", rep.Watts/1e3)
	fmt.Printf("flop rate / system:  %8.1f TFlop/s\n", rep.FlopsPerSystem/1e12)
	fmt.Printf("energy efficiency:   %8.2f GFlop/s/W (paper: 36.50)\n", rep.GFlopsPerWatt)
	fmt.Println()
}

func main() {
	log.SetFlags(0)
	all := flag.Bool("all", false, "run every experiment")
	f14 := flag.Bool("fig14", false, "Fig. 14 tile-size sweep")
	t1 := flag.Bool("table1", false, "Table 1 occupancy")
	t2 := flag.Bool("table2", false, "Table 2 cycles and accesses")
	t3 := flag.Bool("table3", false, "Table 3 six-shard bandwidths")
	t4 := flag.Bool("table4", false, "Table 4 strong scaling")
	t5 := flag.Bool("table5", false, "Table 5 48-shard runs")
	pw := flag.Bool("power", false, "§7.6 power profile")
	flag.Parse()
	if !(*all || *f14 || *t1 || *t2 || *t3 || *t4 || *t5 || *pw) {
		flag.Usage()
		os.Exit(2)
	}
	if *all || *f14 {
		fig14()
	}
	if *all || *t1 {
		table1()
	}
	if *all || *t2 {
		table2()
	}
	if *all || *t3 {
		table3()
	}
	if *all || *t4 {
		table4()
	}
	if *all || *t5 {
		table5()
	}
	if *all || *pw {
		power()
	}
}
