package main

import (
	"strings"
	"testing"

	"repro/internal/mddserve"
)

func validServeConfig() mddserve.Config {
	return mddserve.Config{
		Workers:           2,
		Shards:            4,
		QueueSize:         16,
		PerTenantInflight: 8,
		MaxSources:        512,
		MaxReceivers:      256,
		MaxNt:             512,
	}
}

func TestValidateConfig(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*mddserve.Config)
		wantErr string // "" means the config must be accepted
	}{
		{"defaults", func(c *mddserve.Config) {}, ""},
		{"zero workers", func(c *mddserve.Config) { c.Workers = 0 }, "-workers"},
		{"negative workers", func(c *mddserve.Config) { c.Workers = -3 }, "-workers"},
		{"zero shards", func(c *mddserve.Config) { c.Shards = 0 }, "-shards"},
		{"negative shards", func(c *mddserve.Config) { c.Shards = -1 }, "-shards"},
		{"zero queue", func(c *mddserve.Config) { c.QueueSize = 0 }, "-queue"},
		{"zero tenant inflight", func(c *mddserve.Config) { c.PerTenantInflight = 0 }, "-tenant-inflight"},
		{"zero max sources", func(c *mddserve.Config) { c.MaxSources = 0 }, "-max-sources"},
		{"zero max receivers", func(c *mddserve.Config) { c.MaxReceivers = 0 }, "-max-receivers"},
		{"zero max nt", func(c *mddserve.Config) { c.MaxNt = 0 }, "-max-nt"},
		{"negative store budget", func(c *mddserve.Config) { c.StoreBudget = -1 }, "-store-budget"},
		{"budget without dir", func(c *mddserve.Config) { c.StoreBudget = 1 << 20 }, "-store-dir"},
		{"budget with dir", func(c *mddserve.Config) {
			c.StoreBudget = 1 << 20
			c.StoreDir = t.TempDir()
		}, ""},
		{"zero budget means default", func(c *mddserve.Config) { c.StoreBudget = 0 }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := validServeConfig()
			tc.mutate(&cfg)
			err := validateConfig(cfg)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateConfig(%+v) = %v, want nil", cfg, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateConfig(%+v) = nil, want error naming %s", cfg, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validateConfig error %q does not name the offending flag %s", err, tc.wantErr)
			}
		})
	}
}
