// Command mddserve runs the MDD pipeline as an HTTP service: compression
// footprint jobs, batched TLR-MVM jobs, and fault-tolerant MDD inversion
// jobs are multiplexed onto a pool of simulated CS-2 shard runners with
// bounded-queue admission control, per-tenant concurrency limits, and
// NDJSON residual streaming.
//
// Usage:
//
//	mddserve [-addr :8700] [-workers 2] [-shards 4] [-queue 16]
//	         [-tenant-inflight 8] [-faults "shard1:die@3,op:err@5"]
//	         [-store-dir /var/tmp/mdd] [-store-budget 67108864]
//
// The service speaks the API in internal/mddserve (see its Handler doc
// for routes); internal/mddclient is the matching typed Go client.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/mddserve"
)

// validateConfig rejects nonsensical sizing flags before any listener
// or worker pool is created. Zero or negative worker/shard/queue values
// would deadlock admission (jobs accepted, nobody to run them) rather
// than fail loudly, so they are caught here with the flag name spelled
// out.
func validateConfig(cfg mddserve.Config) error {
	checks := []struct {
		name string
		val  int
	}{
		{"-workers", cfg.Workers},
		{"-shards", cfg.Shards},
		{"-queue", cfg.QueueSize},
		{"-tenant-inflight", cfg.PerTenantInflight},
		{"-max-sources", cfg.MaxSources},
		{"-max-receivers", cfg.MaxReceivers},
		{"-max-nt", cfg.MaxNt},
	}
	for _, c := range checks {
		if c.val < 1 {
			return fmt.Errorf("%s must be at least 1 (got %d)", c.name, c.val)
		}
	}
	if cfg.StoreBudget < 0 {
		return fmt.Errorf("-store-budget must not be negative (got %d; 0 means half the kernel)", cfg.StoreBudget)
	}
	if cfg.StoreBudget > 0 && cfg.StoreDir == "" {
		return fmt.Errorf("-store-budget requires -store-dir (the budget caps a paged tile cache)")
	}
	return nil
}

func main() {
	addr := flag.String("addr", ":8700", "listen address")
	workers := flag.Int("workers", 2, "worker goroutines (each owns a shard runner)")
	shards := flag.Int("shards", 4, "simulated CS-2 shards per worker")
	queue := flag.Int("queue", 16, "bounded job queue size")
	tenantInflight := flag.Int("tenant-inflight", 8, "max queued+running jobs per tenant")
	maxSources := flag.Int("max-sources", 512, "largest accepted source count")
	maxReceivers := flag.Int("max-receivers", 256, "largest accepted receiver count")
	maxNt := flag.Int("max-nt", 512, "largest accepted time-axis length")
	faults := flag.String("faults", "", "fault schedule injected into every mdd job (e.g. \"shard1:die@3,op:err@5\")")
	storeDir := flag.String("store-dir", "", "serve kernels out-of-core from paged tile stores in this directory")
	storeBudget := flag.Int64("store-budget", 0, "resident-byte budget per kernel tile cache (0 = half the kernel)")
	flag.Parse()

	cfg := mddserve.Config{
		Workers:           *workers,
		Shards:            *shards,
		QueueSize:         *queue,
		PerTenantInflight: *tenantInflight,
		MaxSources:        *maxSources,
		MaxReceivers:      *maxReceivers,
		MaxNt:             *maxNt,
		StoreDir:          *storeDir,
		StoreBudget:       *storeBudget,
	}
	if err := validateConfig(cfg); err != nil {
		log.Fatalf("mddserve: %v", err)
	}
	if *storeDir != "" {
		if err := os.MkdirAll(*storeDir, 0o755); err != nil {
			log.Fatalf("mddserve: creating -store-dir: %v", err)
		}
	}
	if *faults != "" {
		sched, err := fault.Parse(*faults)
		if err != nil {
			log.Fatalf("mddserve: bad -faults: %v", err)
		}
		cfg.Faults = sched
	}

	srv := mddserve.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("mddserve: listen %s: %v", *addr, err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	log.Printf("mddserve: serving on %s (%d workers x %d shards, queue %d, tenant inflight %d)",
		ln.Addr(), *workers, *shards, *queue, *tenantInflight)

	done := make(chan struct{})
	go func() {
		defer close(done)
		if serveErr := httpSrv.Serve(ln); serveErr != nil && serveErr != http.ErrServerClosed {
			log.Printf("mddserve: serve: %v", serveErr)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "mddserve: shutting down")
	// Stop admitting, cancel running jobs, then drain the HTTP side.
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("mddserve: shutdown: %v", err)
	}
	<-done
}
