// Command tlrtool manages compressed-kernel files: it runs the §6.1
// pre-processing (synthesize → Hilbert-sort → TLR-compress) and stores the
// result in the tlrio binary format, prints stats of existing files, and
// verifies their integrity.
//
//	tlrtool -compress kernel.tlrk -nb 48 -acc 1e-3
//	tlrtool -info kernel.tlrk
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/mdc"
	"repro/internal/seismic"
	"repro/internal/sfc"
	"repro/internal/tlr"
	"repro/internal/tlrio"
)

func compress(path string, nb int, acc float64) {
	opts := seismic.DemoOptions()
	fmt.Printf("synthesizing %dx%d survey...\n", opts.Geom.NumSources(), opts.Geom.NumReceivers())
	ds, err := seismic.Generate(opts)
	if err != nil {
		log.Fatal(err)
	}
	hds, _ := ds.Reorder(sfc.Hilbert)
	dk, err := mdc.NewDenseKernel(hds.K)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressing %d frequency matrices (nb=%d, acc=%g)...\n", dk.NumFreqs(), nb, acc)
	tk, err := mdc.CompressKernel(dk, tlr.Options{NB: nb, Tol: acc})
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := tlrio.Write(f, &tlrio.Kernel{Freqs: hds.Freqs, Mats: tk.Mats}); err != nil {
		log.Fatal(err)
	}
	st, _ := f.Stat()
	fmt.Printf("wrote %s: %.2f MB on disk, %.2fx compression vs dense\n",
		path, float64(st.Size())/1e6, float64(dk.Bytes())/float64(tk.Bytes()))
}

func info(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	k, err := tlrio.Read(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d frequency matrices (checksum OK)\n", path, len(k.Mats))
	if len(k.Mats) == 0 {
		return
	}
	fmt.Printf("%10s %10s %8s %10s %10s %12s\n",
		"freq (Hz)", "shape", "nb", "max rank", "avg rank", "compression")
	var total, dense int64
	for i, m := range k.Mats {
		total += m.CompressedBytes()
		dense += m.DenseBytes()
		if i%10 == 0 || i == len(k.Mats)-1 {
			fmt.Printf("%10.2f %6dx%-4d %7d %10d %10.1f %11.2fx\n",
				k.Freqs[i], m.M, m.N, m.NB, m.MaxRank(), m.AvgRank(), m.CompressionRatio())
		}
	}
	fmt.Printf("total: %.2f MB compressed vs %.2f MB dense (%.2fx)\n",
		float64(total)/1e6, float64(dense)/1e6, float64(dense)/float64(total))
}

func main() {
	log.SetFlags(0)
	comp := flag.String("compress", "", "synthesize, compress, and write a kernel file")
	nb := flag.Int("nb", 48, "tile size for -compress")
	acc := flag.Float64("acc", 1e-3, "tile accuracy for -compress")
	inf := flag.String("info", "", "print stats of a kernel file")
	flag.Parse()
	switch {
	case *comp != "":
		compress(*comp, *nb, *acc)
	case *inf != "":
		info(*inf)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
