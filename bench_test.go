// Package repro's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation (§6–7). Laptop-scale figures (11–13)
// run the real end-to-end pipeline on a reduced synthetic survey; the
// CS-2 results (Fig. 14, Tables 1–5, §7.6) run the machine model on the
// paper-scale rank layouts. Custom metrics carry each experiment's
// headline quantity (NMSE, PB/s, PFlop/s, GFlop/s/W) alongside the usual
// ns/op.
//
// Regenerate everything:
//
//	go test -bench=. -benchmem
package repro

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/cs2"
	"repro/internal/dense"
	"repro/internal/lsqr"
	"repro/internal/mdc"
	"repro/internal/precision"
	"repro/internal/ranks"
	"repro/internal/roofline"
	"repro/internal/seismic"
	"repro/internal/sfc"
	"repro/internal/tlr"
	"repro/internal/tlrmmm"
	"repro/internal/wse"
	"repro/internal/wsesim"
)

// benchDataset is the reduced survey used by the figure benchmarks: large
// enough for real compression and a meaningful inversion, small enough to
// iterate (the cmd/ tools run the full demo scale).
func benchDataset() seismic.Options {
	return seismic.Options{
		Geom: seismic.Geometry{
			NsX: 12, NsY: 8, NrX: 10, NrY: 6,
			Dx: 20, Dy: 20, SrcDepth: 10, RecDepth: 300,
		},
		Nt: 256, Dt: 0.004,
	}
}

var (
	pipeOnce sync.Once
	pipeTLR  *core.Pipeline
	pipeErr  error
)

func benchPipeline(b *testing.B) *core.Pipeline {
	b.Helper()
	pipeOnce.Do(func() {
		pipeTLR, pipeErr = core.BuildPipeline(core.PipelineOptions{
			Dataset: benchDataset(), TileSize: 10, Accuracy: 1e-4,
		})
	})
	if pipeErr != nil {
		b.Fatal(pipeErr)
	}
	return pipeTLR
}

var (
	distMu    sync.Mutex
	distCache = map[ranks.Config]*ranks.Distribution{}
)

func benchDist(b *testing.B, cfg ranks.Config) *ranks.Distribution {
	b.Helper()
	distMu.Lock()
	defer distMu.Unlock()
	if d, ok := distCache[cfg]; ok {
		return d
	}
	d, err := ranks.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// force the cached layout pass outside the timed region
	d.StackedColumnHeights()
	distCache[cfg] = d
	return d
}

func evalPlan(b *testing.B, cfg ranks.Config, sw, systems int, s wse.Strategy) *wse.Metrics {
	b.Helper()
	m, err := wse.Plan{
		Dist: benchDist(b, cfg), Arch: cs2.DefaultArch(),
		StackWidth: sw, Systems: systems, Strategy: s,
	}.Evaluate()
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkFig11MDDInversion times one single-virtual-source MDD solve
// (30 LSQR iterations on the TLR kernel) and reports the inversion and
// adjoint NMSE of Fig. 11.
func BenchmarkFig11MDDInversion(b *testing.B) {
	pipe := benchPipeline(b)
	vs := pipe.DS.Geom.NumReceivers() / 2
	var rep *core.MDDReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = pipe.RunMDD(vs, 30)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.InversionNMSE, "inversionNMSE")
	b.ReportMetric(rep.AdjointNMSE, "adjointNMSE")
}

// BenchmarkFig12CompressionSweep times TLR compression of the kernel at
// one (nb, acc) point per sub-benchmark and reports the compression ratio
// of Fig. 12.
func BenchmarkFig12CompressionSweep(b *testing.B) {
	benchPipeline(b) // warm the shared dataset cache outside the timed loops
	for _, cfg := range []struct {
		name string
		nb   int
		acc  float64
	}{
		{"nb10_acc1e-4", 10, 1e-4},
		{"nb10_acc1e-2", 10, 1e-2},
		{"nb20_acc1e-4", 20, 1e-4},
		{"nb20_acc1e-2", 20, 1e-2},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				pipe, err := core.BuildPipeline(core.PipelineOptions{
					Dataset: benchDataset(), TileSize: cfg.nb, Accuracy: cfg.acc,
				})
				if err != nil {
					b.Fatal(err)
				}
				ratio = pipe.CompressionRatio()
			}
			b.ReportMetric(ratio, "compressionX")
		})
	}
}

// BenchmarkFig13ZeroOffset times the embarrassingly parallel
// multi-virtual-source line inversion behind Fig. 13.
func BenchmarkFig13ZeroOffset(b *testing.B) {
	pipe := benchPipeline(b)
	g := pipe.DS.Geom
	vss := make([]int, g.NrX)
	for ix := 0; ix < g.NrX; ix++ {
		vss[ix] = g.ReceiverIndex(ix, g.NrY/2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.Problem.InvertLine(vss, lsqr.Options{MaxIters: 30}, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(vss)), "virtualSources")
}

// BenchmarkFig14TileSize evaluates the constant-size synthetic MVM sweep
// of Fig. 14 and reports the saturating relative bandwidth.
func BenchmarkFig14TileSize(b *testing.B) {
	arch := cs2.DefaultArch()
	sizes := []int{8, 16, 32, 64, 128}
	var pts []wse.SyntheticPoint
	for i := 0; i < b.N; i++ {
		pts = wse.SyntheticTileSweep(arch, sizes)
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.RelativeBW/1e15, "relPB/s@N128")
	b.ReportMetric(last.AbsoluteBW/1e15, "absPB/s@N128")
}

// BenchmarkTable1Occupancy evaluates the five validated configurations on
// six shards and reports the occupancy of the nb=25 row.
func BenchmarkTable1Occupancy(b *testing.B) {
	_ = evalPlan(b, ranks.Config{NB: 25, Acc: 1e-4}, 64, 6, wse.Strategy1) // calibrate the layout outside the timed region
	b.ResetTimer()
	var m *wse.Metrics
	for i := 0; i < b.N; i++ {
		m = evalPlan(b, ranks.Config{NB: 25, Acc: 1e-4}, 64, 6, wse.Strategy1)
	}
	b.ReportMetric(m.Occupancy*100, "occupancy%")
	b.ReportMetric(float64(m.PEsUsed), "PEsUsed")
}

// BenchmarkTable2CycleCounts reports the modelled worst cycle count of
// the nb=70 acc=1e-4 configuration (paper: 19131).
func BenchmarkTable2CycleCounts(b *testing.B) {
	_ = evalPlan(b, ranks.Config{NB: 70, Acc: 1e-4}, 23, 6, wse.Strategy1) // calibrate the layout outside the timed region
	b.ResetTimer()
	var m *wse.Metrics
	for i := 0; i < b.N; i++ {
		m = evalPlan(b, ranks.Config{NB: 70, Acc: 1e-4}, 23, 6, wse.Strategy1)
	}
	b.ReportMetric(float64(m.WorstCycles), "worstCycles")
	b.ReportMetric(float64(m.RelativeBytes), "relBytes")
	b.ReportMetric(float64(m.AbsoluteBytes), "absBytes")
}

// BenchmarkTable3SixShards reports the six-shard aggregate bandwidths of
// the best configuration (paper: 12.26 PB/s relative for nb=50 acc=3e-4).
func BenchmarkTable3SixShards(b *testing.B) {
	_ = evalPlan(b, ranks.Config{NB: 50, Acc: 3e-4}, 18, 6, wse.Strategy1) // calibrate the layout outside the timed region
	b.ResetTimer()
	var m *wse.Metrics
	for i := 0; i < b.N; i++ {
		m = evalPlan(b, ranks.Config{NB: 50, Acc: 3e-4}, 18, 6, wse.Strategy1)
	}
	b.ReportMetric(m.RelativeBW/1e15, "relPB/s")
	b.ReportMetric(m.AbsoluteBW/1e15, "absPB/s")
	b.ReportMetric(m.FlopRate/1e15, "PFlop/s")
}

// BenchmarkTable4StrongScaling reports the 20-shard strategy-1 point and
// its parallel efficiency against the 6-shard baseline (paper: 95%).
func BenchmarkTable4StrongScaling(b *testing.B) {
	cfg := ranks.Config{NB: 25, Acc: 1e-4}
	base := evalPlan(b, cfg, 64, 6, wse.Strategy1)
	var m *wse.Metrics
	for i := 0; i < b.N; i++ {
		m = evalPlan(b, cfg, 19, 20, wse.Strategy1)
	}
	b.ReportMetric(m.RelativeBW/1e15, "relPB/s")
	b.ReportMetric(wse.ParallelEfficiency(base, m)*100, "efficiency%")
}

// BenchmarkTable5FortyEight reports the 48-shard strategy-2 headline run
// (paper: 92.58 PB/s relative, 245.59 absolute, 37.95 PFlop/s).
func BenchmarkTable5FortyEight(b *testing.B) {
	var m *wse.Metrics
	for i := 0; i < b.N; i++ {
		m = evalPlan(b, ranks.Config{NB: 70, Acc: 1e-4}, 23, 48, wse.Strategy2)
	}
	b.ReportMetric(m.RelativeBW/1e15, "relPB/s")
	b.ReportMetric(m.AbsoluteBW/1e15, "absPB/s")
	b.ReportMetric(m.FlopRate/1e15, "PFlop/s")
}

// BenchmarkFig15Roofline evaluates the 6-shard operating point against the
// Fig. 15 vendor ceilings.
func BenchmarkFig15Roofline(b *testing.B) {
	m := evalPlan(b, ranks.Config{NB: 50, Acc: 3e-4}, 18, 6, wse.Strategy1)
	machines := roofline.Fig15Machines()
	var pt roofline.Point
	for i := 0; i < b.N; i++ {
		pt = roofline.NewPoint("TLR-MVM six CS-2 relative", m.FlopRate, m.RelativeBW)
		for _, mach := range machines {
			_ = mach.Attainable(pt.AI)
		}
	}
	b.ReportMetric(pt.BW/1e15, "relPB/s")
	b.ReportMetric(pt.AI, "flop/byte")
}

// BenchmarkFig16Roofline evaluates the 48-shard point against the Top-5
// ceilings of Fig. 16.
func BenchmarkFig16Roofline(b *testing.B) {
	m := evalPlan(b, ranks.Config{NB: 70, Acc: 1e-4}, 23, 48, wse.Strategy2)
	machines := roofline.Fig16Machines()
	var pt roofline.Point
	for i := 0; i < b.N; i++ {
		pt = roofline.NewPoint("TLR-MVM 48 CS-2 relative", m.FlopRate, m.RelativeBW)
		for _, mach := range machines {
			_ = mach.Attainable(pt.AI)
		}
	}
	b.ReportMetric(pt.BW/1e15, "relPB/s")
	b.ReportMetric(pt.Flops/1e15, "PFlop/s")
}

// BenchmarkPowerModel reports the §7.6 power profile (paper: 16 kW,
// 36.50 GFlop/s/W).
func BenchmarkPowerModel(b *testing.B) {
	cfg := ranks.Config{NB: 25, Acc: 1e-4}
	plan := wse.Plan{
		Dist: benchDist(b, cfg), Arch: cs2.DefaultArch(),
		StackWidth: 64, Systems: 6, Strategy: wse.Strategy1,
	}
	m, err := plan.Evaluate()
	if err != nil {
		b.Fatal(err)
	}
	var rep wse.PowerReport
	for i := 0; i < b.N; i++ {
		rep = plan.Power(m)
	}
	b.ReportMetric(rep.Watts/1e3, "kW")
	b.ReportMetric(rep.GFlopsPerWatt, "GFlop/s/W")
}

// --- ablation benchmarks (DESIGN.md §4) ---

// BenchmarkAblationShuffleVsCommAvoiding reports the modelled speedup of
// removing the shuffle phase (§5.3) on the nb=70 acc=1e-4 layout.
func BenchmarkAblationShuffleVsCommAvoiding(b *testing.B) {
	d := benchDist(b, ranks.Config{NB: 70, Acc: 1e-4})
	f := bsp.DefaultFabric()
	var cmp *bsp.Comparison
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = bsp.Compare(d, 23, f)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cmp.Speedup, "speedupX")
	b.ReportMetric(cmp.ShuffleShare*100, "shuffleShare%")
}

// BenchmarkAblationOrdering reports the compression ratio per ordering on
// the bench kernel (§4's Hilbert-vs-alternatives claim).
func BenchmarkAblationOrdering(b *testing.B) {
	ds, err := seismic.Generate(benchDataset())
	if err != nil {
		b.Fatal(err)
	}
	for _, ord := range []sfc.Order{sfc.Shuffled, sfc.Natural, sfc.Morton, sfc.Hilbert} {
		b.Run(ord.String(), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				rds, _ := ds.Reorder(ord)
				dk, err := mdc.NewDenseKernel(rds.K)
				if err != nil {
					b.Fatal(err)
				}
				tk, err := mdc.CompressKernel(dk, tlr.Options{NB: 10, Tol: 1e-3})
				if err != nil {
					b.Fatal(err)
				}
				ratio = float64(dk.Bytes()) / float64(tk.Bytes())
			}
			b.ReportMetric(ratio, "compressionX")
		})
	}
}

// BenchmarkAblationPrecision reports fp16 storage savings and the induced
// reconstruction error on a compressed bench matrix.
func BenchmarkAblationPrecision(b *testing.B) {
	ds, err := seismic.Generate(benchDataset())
	if err != nil {
		b.Fatal(err)
	}
	hds, _ := ds.Reorder(sfc.Hilbert)
	tm, err := tlr.Compress(hds.K[hds.NumFreqs()-1], tlr.Options{NB: 10, Tol: 1e-4})
	if err != nil {
		b.Fatal(err)
	}
	ref := tm.Reconstruct()
	var q *precision.Quantized
	for i := 0; i < b.N; i++ {
		q, err = precision.Quantize(tm, precision.Uniform{F: precision.FP16})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(q.Savings()*100, "savings%")
	b.ReportMetric(dense.RelError(q.T.Reconstruct(), ref), "relError")
}

// BenchmarkAblationTLRMMM reports the fused multi-shot schedule's
// arithmetic-intensity gain at 32 shots (§8).
func BenchmarkAblationTLRMMM(b *testing.B) {
	ds, err := seismic.Generate(benchDataset())
	if err != nil {
		b.Fatal(err)
	}
	hds, _ := ds.Reorder(sfc.Hilbert)
	tm, err := tlr.Compress(hds.K[0], tlr.Options{NB: 10, Tol: 1e-4})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x := dense.Random(rng, tm.N, 32)
	y := dense.New(tm.M, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tlrmmm.MulMatFusedParallel(tm, x, y, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tlrmmm.FusedTraffic(tm, 32).Intensity, "fusedAI")
	b.ReportMetric(tlrmmm.NaiveTraffic(tm, 32).Intensity, "naiveAI")
}

// BenchmarkWaferFunctionalSim runs the functional PE-grid simulator on a
// bench frequency matrix and reports its executed traffic.
func BenchmarkWaferFunctionalSim(b *testing.B) {
	ds, err := seismic.Generate(benchDataset())
	if err != nil {
		b.Fatal(err)
	}
	hds, _ := ds.Reorder(sfc.Hilbert)
	tm, err := tlr.Compress(hds.K[0], tlr.Options{NB: 10, Tol: 1e-3})
	if err != nil {
		b.Fatal(err)
	}
	mach, err := wsesim.Build(tm, 8, cs2.DefaultArch())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := dense.Random(rng, tm.N, 1).Data
	y := make([]complex64, tm.M)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mach.MulVec(x, y)
	}
	b.ReportMetric(float64(mach.NumPEs()), "PEs")
}
